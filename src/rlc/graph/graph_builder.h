// Incremental construction of DiGraph instances with optional name
// dictionaries, used by loaders, generators and the example programs.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rlc/graph/digraph.h"
#include "rlc/graph/types.h"

namespace rlc {

/// Accumulates vertices and labeled edges, then produces an immutable
/// DiGraph. Vertices and labels can be addressed by dense id or by name
/// (names are interned on first use).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares `n` anonymous vertices (ids 0..n-1). Only valid before any
  /// named vertex was added.
  explicit GraphBuilder(VertexId n) : num_vertices_(n) {}

  /// Interns `name` and returns its vertex id (stable across calls).
  VertexId Vertex(const std::string& name);

  /// Interns `name` and returns its label id (stable across calls).
  Label LabelId(const std::string& name);

  /// Adds the edge src --label--> dst by ids, growing the vertex count as
  /// needed.
  GraphBuilder& AddEdge(VertexId src, VertexId dst, Label label);

  /// Adds the edge src --label--> dst by names.
  GraphBuilder& AddEdge(const std::string& src, const std::string& dst,
                        const std::string& label);

  /// Number of vertices added so far.
  VertexId num_vertices() const { return num_vertices_; }

  /// Builds the graph. The builder can be reused afterwards only after
  /// Clear(). Name dictionaries are attached when any name was used.
  /// \param dedup_parallel  collapse exact duplicate edges (default true).
  DiGraph Build(bool dedup_parallel = true);

  /// Resets the builder to the empty state.
  void Clear();

 private:
  VertexId num_vertices_ = 0;
  Label num_labels_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::string> vertex_names_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, VertexId> vertex_by_name_;
  std::unordered_map<std::string, Label> label_by_name_;
};

}  // namespace rlc
