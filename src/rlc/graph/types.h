// Fundamental value types for edge-labeled directed graphs.

#pragma once

#include <cstdint>
#include <limits>

namespace rlc {

/// Dense vertex identifier in [0, num_vertices).
using VertexId = uint32_t;

/// Dense edge-label identifier in [0, num_labels).
using Label = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no label".
inline constexpr Label kInvalidLabel = std::numeric_limits<Label>::max();

/// A labeled directed edge (src --label--> dst).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Label label = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// One adjacency slot: the neighbour vertex and the connecting edge's label.
struct LabeledNeighbor {
  VertexId v = 0;
  Label label = 0;

  friend bool operator==(const LabeledNeighbor&, const LabeledNeighbor&) = default;
  friend auto operator<=>(const LabeledNeighbor&, const LabeledNeighbor&) = default;
};

}  // namespace rlc
