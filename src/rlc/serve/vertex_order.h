// Locality-aware vertex orderings for range partitioning.
//
// Range partitioning shards by contiguous vertex-id blocks, so its cut
// quality is entirely a property of how ids correlate with topology. On
// generator output (or any relabeled input) they don't — hash and range
// both cut almost every edge. These orderings compute a permutation that
// *makes* ids correlate with topology; the kRangeOrdered partition policy
// (partitioner.h) shards by rank in the permutation instead of by raw id,
// so vertices a heuristic places together land in the same shard.
//
// The heuristics are the classic constrained-reachability orderings (the
// DEG / RDEG / GreatestConstraintFirst family used by landmark and 2-hop
// indexing work): degree-descending puts hubs first, reverse-degree puts
// the periphery first, and greatest-constraint-first greedily appends the
// vertex with the most already-placed neighbors — a cheap single-pass
// community agglomerator that keeps dense neighborhoods in one contiguous
// rank window.
//
// All orderings are deterministic for a fixed (graph, heuristic, seed):
// ties break by seeded hash then by vertex id, never by pointer or
// iteration order of an unordered container.

#pragma once

#include <cstdint>
#include <vector>

#include "rlc/graph/digraph.h"

namespace rlc {

/// Which permutation ComputeVertexOrder builds.
enum class OrderHeuristic : uint8_t {
  kDegree,          ///< DEG: total degree descending (hubs first)
  kReverseDegree,   ///< RDEG: total degree ascending (periphery first)
  kGreatestConstraintFirst,  ///< GCF: greedily append the vertex with the
                             ///< most already-placed neighbors
};

/// Computes a bijective permutation of the graph's vertices under the given
/// heuristic. Returns `order` with order[rank] = vertex; rank 0 is placed
/// first. Deterministic for a fixed (g, heuristic, seed).
std::vector<VertexId> ComputeVertexOrder(const DiGraph& g,
                                         OrderHeuristic heuristic,
                                         uint64_t seed = 0);

/// Inverts an order permutation: rank_of[v] = rank of vertex v.
std::vector<VertexId> InvertOrder(const std::vector<VertexId>& order);

}  // namespace rlc
