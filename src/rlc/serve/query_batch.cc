#include "rlc/serve/query_batch.h"

#include <algorithm>
#include <memory>

#include "rlc/obs/metrics.h"
#include "rlc/serve/kernel_jobs.h"
#include "rlc/util/common.h"
#include "rlc/util/thread_pool.h"

namespace rlc {

namespace {

// Global-registry telemetry for the free-function batch executor; the
// sharded service keeps its own per-instance registry instead. Handles
// are resolved once — the registry mutex is never on the batch path.
struct BatchMetrics {
  obs::Counter& probes;
  obs::Counter& sig_refuted;
  obs::Counter& hits;
  obs::Counter& batches;
  obs::Histogram& batch_ns;
  obs::Histogram& job_ns;
  obs::Counter& deadline_exceeded;
  obs::Counter& job_failures;

  static BatchMetrics& Get() {
    obs::Registry& reg = obs::Registry::Global();
    static BatchMetrics m{reg.GetCounter("rlc.query.probes"),
                          reg.GetCounter("rlc.query.sig_refuted"),
                          reg.GetCounter("rlc.query.hits"),
                          reg.GetCounter("rlc.query.batches"),
                          reg.GetHistogram("rlc.query.batch_ns"),
                          reg.GetHistogram("rlc.query.kernel_job_ns"),
                          reg.GetCounter("rlc.query.deadline_exceeded"),
                          reg.GetCounter("rlc.query.job_failures")};
    return m;
  }
};

}  // namespace

AnswerBatch ExecuteBatch(const RlcIndex& index, const QueryBatch& batch,
                         const ExecuteOptions& options) {
  RLC_REQUIRE(options.probes_per_job >= 1,
              "ExecuteBatch: probes_per_job must be >= 1");
  const bool metrics_on = obs::Enabled();
  // An active batch budget needs the clock even when metrics are off.
  const Deadline deadline = Deadline::After(
      options.batch_budget_ns,
      options.batch_budget_ns != 0 || metrics_on ? obs::NowNanos() : 0);
  const uint64_t batch_t0 = metrics_on ? obs::NowNanos() : 0;
  AnswerBatch out;
  out.answers.assign(batch.num_probes(), 0);
  out.statuses.assign(batch.num_probes(), ProbeStatus::kOk);

  // Per distinct sequence: validate once, hash into the MR table once.
  const std::vector<LabelSeq>& seqs = batch.sequences();
  std::vector<MrId> mr_of(seqs.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    RlcIndex::ValidateConstraint(seqs[i], index.k());
    mr_of[i] = index.FindMr(seqs[i]);
  }

  // Bucket probe positions by sequence, preserving submission order inside
  // each bucket (stable, hence deterministic).
  const std::vector<BatchProbe>& probes = batch.probes();
  const VertexId nv = index.num_vertices();
  std::vector<std::vector<uint32_t>> by_seq(seqs.size());
  for (uint32_t i = 0; i < probes.size(); ++i) {
    const BatchProbe& p = probes[i];
    RLC_REQUIRE(p.seq_id < seqs.size(),
                "ExecuteBatch: probe " << i << " references unknown seq_id "
                                       << p.seq_id);
    RLC_REQUIRE(p.s < nv && p.t < nv,
                "ExecuteBatch: probe " << i << " vertex out of range");
    by_seq[p.seq_id].push_back(i);
  }

  // One chunked job run per bucket. Each job owns its pair/answer buffers;
  // a group's jobs cover its bucket positions in order, so the splice walks
  // them sequentially.
  struct GroupRef {
    const std::vector<uint32_t>* bucket;
    size_t first_job;
  };
  std::vector<internal::KernelJob> jobs;
  std::vector<GroupRef> group_refs;
  for (size_t seq_id = 0; seq_id < by_seq.size(); ++seq_id) {
    const std::vector<uint32_t>& bucket = by_seq[seq_id];
    if (bucket.empty()) continue;
    if (mr_of[seq_id] == kInvalidMrId) continue;  // never recorded: all false
    ++out.num_groups;
    group_refs.push_back({&bucket, jobs.size()});
    const size_t first_new = jobs.size();
    internal::AppendChunkedJobs(
        index, mr_of[seq_id], bucket.size(), options.probes_per_job,
        [&](size_t i) {
          return VertexPair{probes[bucket[i]].s, probes[bucket[i]].t};
        },
        jobs);
    for (size_t j = first_new; j < jobs.size(); ++j) {
      jobs[j].deadline_ns = deadline.at_ns;
      jobs[j].failpoint = failpoints::kServeKernelJob;
    }
  }

  // Fan the jobs out when the caller provided (or asked for) workers.
  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr && options.num_threads != 1 && jobs.size() > 1) {
    const uint32_t threads = ThreadPool::ResolveThreads(options.num_threads);
    if (threads > 1) {
      owned = std::make_unique<ThreadPool>(threads);
      pool = owned.get();
    }
  }
  internal::RunKernelJobs(jobs, pool);

  // Splice the per-job buffers back in probe order; jobs that the deadline
  // skipped (or that an injected fault failed) surface as statuses instead
  // of answers — this executor has no degraded path of its own.
  for (const GroupRef& group : group_refs) {
    size_t pos = 0;
    for (size_t j = group.first_job; pos < group.bucket->size(); ++j) {
      const internal::KernelJob& job = jobs[j];
      if (job.outcome == internal::KernelJob::Outcome::kRan) {
        for (const uint8_t a : job.answers) {
          out.answers[(*group.bucket)[pos++]] = a;
        }
        continue;
      }
      const ProbeStatus status =
          job.outcome == internal::KernelJob::Outcome::kSkippedDeadline
              ? ProbeStatus::kDeadlineExceeded
              : ProbeStatus::kShardUnavailable;
      if (status == ProbeStatus::kDeadlineExceeded) {
        out.num_deadline_exceeded += job.pairs.size();
      } else {
        out.num_unavailable += job.pairs.size();
      }
      for (size_t k = 0; k < job.pairs.size(); ++k) {
        out.statuses[(*group.bucket)[pos++]] = status;
      }
    }
  }

  if (metrics_on) {
    BatchMetrics& m = BatchMetrics::Get();
    const GroupQueryStats totals = internal::MergeJobStats(jobs, &m.job_ns);
    m.probes.Add(totals.probes);
    m.sig_refuted.Add(totals.sig_refuted);
    m.hits.Add(totals.hits);
    m.batches.Inc();
    m.batch_ns.Record(obs::NowNanos() - batch_t0);
    if (out.num_deadline_exceeded > 0) {
      m.deadline_exceeded.Add(out.num_deadline_exceeded);
    }
    if (out.num_unavailable > 0) m.job_failures.Add(out.num_unavailable);
  }
  return out;
}

}  // namespace rlc
