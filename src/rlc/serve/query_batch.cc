#include "rlc/serve/query_batch.h"

#include "rlc/util/common.h"

namespace rlc {

AnswerBatch ExecuteBatch(const RlcIndex& index, const QueryBatch& batch) {
  AnswerBatch out;
  out.answers.assign(batch.num_probes(), 0);

  // Per distinct sequence: validate once, hash into the MR table once.
  const std::vector<LabelSeq>& seqs = batch.sequences();
  std::vector<MrId> mr_of(seqs.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    RlcIndex::ValidateConstraint(seqs[i], index.k());
    mr_of[i] = index.FindMr(seqs[i]);
  }

  // Bucket probe positions by sequence, preserving submission order inside
  // each bucket (stable, hence deterministic).
  const std::vector<BatchProbe>& probes = batch.probes();
  const VertexId nv = index.num_vertices();
  std::vector<std::vector<uint32_t>> by_seq(seqs.size());
  for (uint32_t i = 0; i < probes.size(); ++i) {
    const BatchProbe& p = probes[i];
    RLC_REQUIRE(p.seq_id < seqs.size(),
                "ExecuteBatch: probe " << i << " references unknown seq_id "
                                       << p.seq_id);
    RLC_REQUIRE(p.s < nv && p.t < nv,
                "ExecuteBatch: probe " << i << " vertex out of range");
    by_seq[p.seq_id].push_back(i);
  }

  std::vector<VertexPair> pairs;
  std::vector<uint8_t> group_answers;
  for (size_t seq_id = 0; seq_id < by_seq.size(); ++seq_id) {
    const std::vector<uint32_t>& bucket = by_seq[seq_id];
    if (bucket.empty()) continue;
    if (mr_of[seq_id] == kInvalidMrId) continue;  // never recorded: all false
    ++out.num_groups;
    pairs.clear();
    pairs.reserve(bucket.size());
    for (const uint32_t i : bucket) pairs.push_back({probes[i].s, probes[i].t});
    group_answers.assign(bucket.size(), 0);
    index.QueryGroupInterned(mr_of[seq_id], pairs, group_answers);
    for (size_t j = 0; j < bucket.size(); ++j) {
      out.answers[bucket[j]] = group_answers[j];
    }
  }
  return out;
}

}  // namespace rlc
