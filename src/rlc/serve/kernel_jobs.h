// Internal helper for the batched executors: a list of grouped CSR probe
// jobs and a runner that executes them either inline or fanned out across
// a worker pool.
//
// A job is one (index, MR, probe pairs) group — or a chunk of one, when a
// group is big enough to split for load balance. Jobs touch only their own
// pairs/answers buffers and the (const, thread-safe) query path of their
// index, so running them in any order on any thread produces the same
// buffers; the caller splices the per-job answers back in probe order,
// which keeps batch execution bit-identical for every thread count.
//
// When metrics are enabled (obs::Enabled()), each job additionally runs
// the counted kernel (probe/signature-refute/hit tallies) and records its
// wall time; the instrumentation is per *job* (<= probes_per_job probes),
// never per probe, so the measured overhead on the negative-heavy kernel
// stays inside the bench budget. RunKernelJobs always maintains the global
// "serve.exec.queue_depth" gauge (jobs not yet claimed by a worker) —
// admission control reads it, so it cannot gate on the metrics kill
// switch.
//
// Fault tolerance hooks, all checked once per job (never per probe):
//  * a job with an absolute deadline that has already expired is skipped
//    (outcome kSkippedDeadline, answers stay 0) — this is the "check the
//    deadline between job chunks" point of deadline-aware execution;
//  * each job evaluates its failpoint site through the one-load fast path;
//  * a throwing kernel (only injected faults throw today) is caught into
//    outcome kFailed — ThreadPool::Run's fn must not throw, and the
//    routing pass upstairs decides whether the probes degrade to the
//    exact index-free composition path or surface a status.

#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <vector>

#include "rlc/core/rlc_index.h"
#include "rlc/obs/metrics.h"
#include "rlc/util/failpoint.h"
#include "rlc/util/thread_pool.h"

namespace rlc::internal {

struct KernelJob {
  const RlcIndex* index = nullptr;
  MrId mr = kInvalidMrId;
  std::vector<VertexPair> pairs;
  std::vector<uint8_t> answers;  ///< filled by RunKernelJobs
  GroupQueryStats stats;         ///< filled when metrics are enabled
  uint64_t kernel_ns = 0;        ///< job wall time when metrics are enabled
  /// Absolute deadline (obs::NowNanos() timebase); 0 = none. Checked once
  /// before the job's kernel pass runs.
  uint64_t deadline_ns = 0;
  /// Failpoint evaluated before the kernel pass (null = no site).
  const char* failpoint = nullptr;

  enum class Outcome : uint8_t {
    kRan = 0,              ///< answers are valid
    kSkippedDeadline = 1,  ///< deadline expired before the job started
    kFailed = 2,           ///< kernel threw (injected fault); see `error`
  };
  Outcome outcome = Outcome::kRan;
  std::string error;  ///< what() of the failure when outcome == kFailed
};

/// Appends jobs covering positions [0, count) of one probe group against
/// (index, mr), split into chunks of at most `chunk` probes (>= 1) so one
/// big group still spreads across a pool. `pair_of(i)` yields the probe
/// pair at group position i; positions stay in order across the appended
/// jobs, so the caller can splice answers back by walking them
/// sequentially.
template <typename PairFn>
void AppendChunkedJobs(const RlcIndex& index, MrId mr, size_t count,
                       size_t chunk, PairFn&& pair_of,
                       std::vector<KernelJob>& jobs) {
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(count, begin + chunk);
    KernelJob job;
    job.index = &index;
    job.mr = mr;
    job.pairs.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) job.pairs.push_back(pair_of(i));
    jobs.push_back(std::move(job));
  }
}

/// Pending kernel jobs across all executors in the process (the pool has
/// no queue of its own — jobs are claimed from a shared cursor).
inline obs::Gauge& KernelQueueDepthGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("serve.exec.queue_depth");
  return g;
}

/// Sums the per-job kernel telemetry (meaningful only for a metrics-on
/// run) and flushes each job's wall time into `job_ns`, if given.
inline GroupQueryStats MergeJobStats(const std::vector<KernelJob>& jobs,
                                     obs::Histogram* job_ns = nullptr) {
  GroupQueryStats total;
  for (const KernelJob& job : jobs) {
    total.probes += job.stats.probes;
    total.sig_refuted += job.stats.sig_refuted;
    total.hits += job.stats.hits;
    if (job_ns != nullptr && job.kernel_ns != 0) job_ns->Record(job.kernel_ns);
  }
  return total;
}

/// Executes every job's grouped CSR pass. `pool` may be null (run inline).
/// Never throws: per-job faults land in the job's outcome/error fields.
inline void RunKernelJobs(std::vector<KernelJob>& jobs, ThreadPool* pool) {
  const bool counted = obs::Enabled();
  // Deadline short-circuit shared across the run: once any job's clock read
  // proves time T has passed, every later job whose deadline is <= T skips
  // without its own clock read — the tail of a blown batch drains in O(1)
  // per job. Monotone-safe with heterogeneous deadlines (a later deadline
  // still gets a fresh read).
  std::atomic<uint64_t> observed_now{0};
  auto run_one = [counted, &observed_now](KernelJob& job) {
    job.answers.assign(job.pairs.size(), 0);
    if (job.deadline_ns != 0) {
      uint64_t now = observed_now.load(std::memory_order_relaxed);
      if (now < job.deadline_ns) {
        now = obs::NowNanos();
        observed_now.store(now, std::memory_order_relaxed);
      }
      if (now >= job.deadline_ns) {
        job.outcome = KernelJob::Outcome::kSkippedDeadline;
        KernelQueueDepthGauge().Sub(1);
        return;
      }
    }
    try {
      if (job.failpoint != nullptr) FailpointHitFast(job.failpoint);
      if (counted) {
        const uint64_t t0 = obs::NowNanos();
        job.index->QueryGroupInterned(job.mr, job.pairs, job.answers,
                                      &job.stats);
        job.kernel_ns = obs::NowNanos() - t0;
      } else {
        job.index->QueryGroupInterned(job.mr, job.pairs, job.answers);
      }
    } catch (const std::exception& e) {
      job.outcome = KernelJob::Outcome::kFailed;
      job.error = e.what();
      job.answers.assign(job.pairs.size(), 0);  // a partial pass is garbage
      job.stats = GroupQueryStats{};
    }
    KernelQueueDepthGauge().Sub(1);
  };
  KernelQueueDepthGauge().Add(static_cast<int64_t>(jobs.size()));
  if (pool == nullptr || jobs.size() <= 1) {
    for (KernelJob& job : jobs) run_one(job);
    return;
  }
  std::atomic<size_t> cursor{0};
  pool->Run([&](uint32_t) {
    for (size_t j; (j = cursor.fetch_add(1)) < jobs.size();) {
      run_one(jobs[j]);
    }
  });
}

}  // namespace rlc::internal
