// Batched boolean-query API for the serving layer.
//
// A QueryBatch collects RLC probes (s, t, L+) with the constraint sequences
// *interned once per distinct sequence* — the prepared-statement model of a
// query log, where thousands of probes share a handful of templates. An
// executor then validates and resolves each distinct sequence exactly once,
// groups the probes by interned MR (and, in the sharded service, by shard)
// and answers each group over the sealed CSR layout with lookahead prefetch
// (RlcIndex::QueryGroupInterned). This amortizes the per-call overhead that
// dominates scalar serving — FindMr hashing, constraint validation, and the
// cold first touch of every probe's entry lists.
//
// Two executors exist:
//  * ExecuteBatch(index, batch)      — one whole-graph index (this header);
//  * ShardedRlcService::Execute      — routed across shards
//                                      (sharded_service.h).
// Both return answers identical to evaluating RlcIndex::Query per probe.

#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/core/rlc_index.h"
#include "rlc/serve/serving_status.h"

namespace rlc {

class ThreadPool;  // util/thread_pool.h

/// One probe: endpoints plus the batch-local id of an interned sequence.
struct BatchProbe {
  VertexId s = 0;
  VertexId t = 0;
  uint32_t seq_id = 0;
};

/// A reusable batch of probes over interned constraint sequences.
class QueryBatch {
 public:
  /// Returns the batch-local id of `seq`, interning it on first sight.
  uint32_t InternSequence(const LabelSeq& seq) {
    auto [it, inserted] =
        ids_.try_emplace(seq, static_cast<uint32_t>(seqs_.size()));
    if (inserted) seqs_.push_back(seq);
    return it->second;
  }

  /// Adds one probe against an already-interned sequence id.
  void Add(VertexId s, VertexId t, uint32_t seq_id) {
    probes_.push_back({s, t, seq_id});
  }

  /// Convenience: intern + add in one call.
  void Add(VertexId s, VertexId t, const LabelSeq& seq) {
    Add(s, t, InternSequence(seq));
  }

  size_t num_probes() const { return probes_.size(); }
  uint32_t num_sequences() const { return static_cast<uint32_t>(seqs_.size()); }
  const std::vector<BatchProbe>& probes() const { return probes_; }
  const std::vector<LabelSeq>& sequences() const { return seqs_; }
  const LabelSeq& sequence(uint32_t seq_id) const { return seqs_[seq_id]; }

  /// Drops the probes but keeps the interned sequences and their ids —
  /// replay loops reuse the same templates chunk after chunk.
  void ClearProbes() { probes_.clear(); }

 private:
  std::vector<LabelSeq> seqs_;
  std::unordered_map<LabelSeq, uint32_t, LabelSeqHash> ids_;
  std::vector<BatchProbe> probes_;
};

/// Answers plus executor accounting (query-path telemetry for benches and
/// the serving stats).
struct AnswerBatch {
  std::vector<uint8_t> answers;  ///< answers[i] == 1 iff probe i reachable
  /// Per-probe outcome, parallel to `answers`. answers[i] is exact iff
  /// statuses[i] == ProbeStatus::kOk (every non-kOk answer stays 0). All
  /// kOk on a fault-free run with no deadline.
  std::vector<ProbeStatus> statuses;
  uint64_t num_groups = 0;    ///< index probe groups executed
  uint64_t num_refuted = 0;   ///< probes refuted by the boundary summary
                              ///< (sharded executor only)
  uint64_t num_composed = 0;  ///< probes answered by cross-shard composition
                              ///< over the boundary skeleton (sharded
                              ///< executor only)
  uint64_t num_deadline_exceeded = 0;  ///< statuses == kDeadlineExceeded
  uint64_t num_shedded = 0;            ///< statuses == kShedded
  uint64_t num_unavailable = 0;        ///< statuses == kShardUnavailable
  uint64_t num_degraded = 0;  ///< probes answered exactly by index-free
                              ///< evaluation because their shard was broken/
                              ///< breaker-open (sharded executor only; kOk)
  uint64_t num_frontier_hits = 0;    ///< composed probes answered from a
                                     ///< cached skeleton frontier (sharded
                                     ///< executor only)
  uint64_t num_frontier_misses = 0;  ///< composed probes that built + cached
                                     ///< a skeleton frontier (sharded
                                     ///< executor only)

  bool all_ok() const {
    return num_deadline_exceeded == 0 && num_shedded == 0 &&
           num_unavailable == 0;
  }
};

/// Execution knobs for the single-index executor.
struct ExecuteOptions {
  /// Worker threads for the grouped CSR passes. 1 = run on the caller's
  /// thread (no pool); 0 = all hardware threads. With more than one
  /// thread the probe groups are partitioned across a pool and answered
  /// into per-job buffers that are spliced back in probe order — answers
  /// and counters are identical for every thread count.
  uint32_t num_threads = 1;
  /// Reuse an existing pool instead of spawning one per call (overrides
  /// num_threads). The pool is only borrowed for the duration of the call.
  ThreadPool* pool = nullptr;
  /// Groups larger than this split into multiple jobs so a batch dominated
  /// by one template still spreads across the pool.
  size_t probes_per_job = 8192;
  /// Per-batch execution budget in nanoseconds; 0 (default) = no deadline.
  /// The executor stamps an absolute deadline at entry and checks it
  /// between job chunks: jobs that have not started when it expires are
  /// skipped and their probes return ProbeStatus::kDeadlineExceeded — so a
  /// batch never blocks unboundedly behind a slow index, and every probe
  /// that did run keeps its exact answer.
  uint64_t batch_budget_ns = 0;
};

/// Executes `batch` against one whole-graph index: validates and resolves
/// each distinct sequence once, then runs one grouped CSR pass per distinct
/// MR — in parallel across (chunked) groups when `options` provides
/// threads. Answers are identical to calling index.Query per probe, for
/// every thread count.
/// \throws std::invalid_argument on an invalid sequence (empty, longer than
///         the index's k, or non-primitive), an out-of-range probe vertex,
///         or an out-of-range seq_id.
AnswerBatch ExecuteBatch(const RlcIndex& index, const QueryBatch& batch,
                         const ExecuteOptions& options);
inline AnswerBatch ExecuteBatch(const RlcIndex& index,
                                const QueryBatch& batch) {
  return ExecuteBatch(index, batch, ExecuteOptions{});
}

}  // namespace rlc
