// Serving-degradation vocabulary: per-probe statuses, deadlines, and the
// typed errors the fault-tolerant execution path surfaces.
//
// The serving layer never trades exactness for availability — a probe
// either gets the bit-identical exact answer (kOk) or an explicit
// non-answer status; there is no "approximate" result. docs/robustness.md
// walks the full degradation ladder.

#pragma once

#include <cstdint>
#include <stdexcept>

namespace rlc {

/// Outcome of one batched probe. `answers[i]` is meaningful only when
/// `statuses[i] == kOk`; every other status leaves the answer 0.
enum class ProbeStatus : uint8_t {
  kOk = 0,                ///< exact answer produced
  kDeadlineExceeded = 1,  ///< batch deadline expired before this probe ran
  kShedded = 2,           ///< dropped by admission control (overload)
  kShardUnavailable = 3,  ///< owning engine errored / breaker open, and the
                          ///< composition engine cannot answer either
};

inline const char* ProbeStatusName(ProbeStatus s) {
  switch (s) {
    case ProbeStatus::kOk:
      return "ok";
    case ProbeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ProbeStatus::kShedded:
      return "shedded";
    case ProbeStatus::kShardUnavailable:
      return "shard_unavailable";
  }
  return "unknown";
}

/// An absolute monotonic-clock deadline (obs::NowNanos() timebase).
/// at_ns == 0 means "no deadline", so a default Deadline{} never expires —
/// the zero-cost common case: executors skip every clock read behind
/// `if (deadline.active())`.
struct Deadline {
  uint64_t at_ns = 0;

  /// A deadline `budget_ns` after `now_ns`; budget 0 = no deadline.
  /// Saturates instead of wrapping, so an "infinite" budget cannot alias
  /// the no-deadline encoding or land in the past.
  static Deadline After(uint64_t budget_ns, uint64_t now_ns) {
    if (budget_ns == 0) return Deadline{};
    const uint64_t at = now_ns + budget_ns;
    return Deadline{at < now_ns ? ~uint64_t{0} : at};
  }

  bool active() const { return at_ns != 0; }
  bool Expired(uint64_t now_ns) const { return at_ns != 0 && now_ns >= at_ns; }
  /// Saturating time left; ~0 when no deadline is set.
  uint64_t RemainingNs(uint64_t now_ns) const {
    if (at_ns == 0) return ~uint64_t{0};
    return now_ns >= at_ns ? 0 : at_ns - now_ns;
  }
};

/// The earlier of two deadlines; an unset deadline never wins (so combining
/// a batch deadline with an unset per-probe budget keeps the batch one).
inline Deadline EarlierOf(Deadline a, Deadline b) {
  if (!a.active()) return b;
  if (!b.active()) return a;
  return a.at_ns <= b.at_ns ? a : b;
}

/// Admission control rejected the work before any of it ran (queue over
/// the high-water mark or the batch over the probe cap). Nothing was
/// executed; retrying after backoff is safe.
class OverloadedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The engine that owns this probe is failing fast (circuit breaker open
/// with no healthy engine left to answer exactly). Retrying after the
/// breaker's backoff is safe.
class UnavailableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace rlc
