// The sharded serving layer: one sealed RLC index per shard behind a
// batched-query router — no whole-graph structure anywhere.
//
// A ShardedRlcService partitions its graph (partitioner.h), builds one
// sealed per-shard RlcIndex — shard builds run in parallel on the shared
// worker pool — and routes probes in three exact steps:
//
//  1. intra-shard probe: when s and t land in the same shard, the shard
//     index is probed first. The shard graph is a subgraph of G, so a hit
//     is definitive; a miss is not (the witness path may detour through
//     another shard) and continues with step 2.
//  2. boundary refutation: a path that crosses shards must leave the
//     source shard over a cross edge labeled with a label of L, enter the
//     target shard the same way, and induce a walk in the shard quotient
//     graph. Each is a necessary condition, so a failed check answers
//     exactly false from the boundary summary alone.
//  3. composition: the remaining probes are answered by composing
//     source-shard suffix -> boundary-skeleton hops -> target-shard prefix
//     over the partition's cross-edge skeleton, with per-(shard,
//     constraint) boundary transition tables as the intra-shard closure
//     oracle (compose.h). There is no whole-graph fallback tier: the
//     aggregate index footprint is the sum of the shard indexes, and
//     composed answers are exact by construction.
//
// All three steps preserve exactness: answers are bit-identical to a
// whole-graph RlcIndex for every probe (tests/serving_test.cc,
// tests/composition_test.cc sweep policies x shard counts).
//
// The batched entry point (Execute) additionally resolves each distinct
// constraint once, groups probes by (shard, MR), runs each group over the
// sealed CSR layout with lookahead prefetch (query_batch.h), and fans the
// surviving composed probes out across the execution pool (the composition
// engine's probe path is const; lazily built transition rows publish via
// acquire/release).
//
// The service also accepts live edge inserts and deletes (ApplyUpdates):
// intra-shard edges go to the owning shard's dynamically maintained index
// (dynamic_index.h), cross-shard edges refresh the boundary summary —
// AddCrossEdge grows it in place, RemoveCrossEdge shrinks it by a
// recompute — and the composition engine is told which shards' transition
// tables went stale (they refresh lazily on the next probe that needs
// them), so answers stay exact on the mutated graph. Each shard index
// reseals independently under ServiceOptions::reseal; reseals do not
// invalidate composition state (the tables are a function of the graph,
// not the index).
//
// When a shard's breaker is open (or its probe faults), same-shard probes
// cannot trust the shard index — and no whole-graph index exists to detour
// to. They are answered exactly anyway, index-free: an intra-shard product
// BFS over the live mutated shard graph, OR-ed with the composed
// cross-shard answer (compose.h evaluates both on the graph, not on any
// index). Degraded probes cost more, but degrade capacity, not
// correctness.

#pragma once

#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "rlc/core/durable_index.h"
#include "rlc/core/dynamic_index.h"
#include "rlc/core/indexer.h"
#include "rlc/core/rlc_index.h"
#include "rlc/core/wal.h"
#include "rlc/obs/metrics.h"
#include "rlc/serve/circuit_breaker.h"
#include "rlc/serve/compose.h"
#include "rlc/serve/partitioner.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/serving_status.h"
#include "rlc/util/thread_pool.h"

namespace rlc {

struct ServiceOptions {
  PartitionerOptions partition;
  /// Per-shard build configuration. k bounds every constraint the service
  /// accepts; num_threads/seal are overridden (shards build sequentially
  /// inside the service's own pool and are always sealed).
  IndexerOptions indexer;
  /// Worker pool size for parallel shard builds; 0 = all hardware threads.
  uint32_t build_threads = 0;
  /// Worker pool size for batched query execution (Execute): the (shard,
  /// MR) probe groups and the composed-probe chunks fan out across a pool
  /// kept alive for the service's lifetime, with per-job answer buffers
  /// spliced back in probe order. 1 = execute on the caller's thread
  /// (default); 0 = all hardware threads. Answers and stats are identical
  /// for every value.
  uint32_t exec_threads = 1;
  /// Split probe groups larger than this into multiple jobs so a batch
  /// dominated by one (shard, MR) group still spreads across the pool.
  size_t exec_probes_per_job = 8192;
  /// Cross-shard composition tuning (transition-table budget, plan cache).
  ComposeOptions compose;
  /// Reseal policy for the dynamically maintained shard indexes (only
  /// relevant once ApplyUpdates has been called).
  ResealPolicy reseal;
  /// Crash-safe durability (durable_index.h). With `durability.dir` set the
  /// service logs every ApplyUpdates batch to a WAL before applying it and
  /// checkpoints generation-numbered snapshot directories:
  ///   <dir>/MANIFEST, <dir>/wal-<G>.log,
  ///   <dir>/gen-<G>/{service.snap, compose.snap, shard-<i>.snap}
  /// When the directory already holds a durable state, the constructor
  /// recovers it — per-shard snapshots load in parallel on the build pool,
  /// skipping every index build — and replays the WAL tail. compose.snap
  /// is a pure warm-cache: a missing or corrupt one restarts the
  /// transition tables cold, never fails recovery. Empty dir (default)
  /// disables durability.
  DurabilityOptions durability;
  /// Default per-batch execution budget for Execute(batch) in nanoseconds
  /// (0 = none); overridable per call via ExecuteLimits. When the budget
  /// expires mid-batch, jobs that have not started are skipped and their
  /// probes return ProbeStatus::kDeadlineExceeded; completed probes keep
  /// their exact answers.
  uint64_t batch_budget_ns = 0;
  /// Default per-probe budget for composed probes in nanoseconds (0 =
  /// none). The budget is enforced *inside* the composition traversal
  /// (deadline-checked every CompositionEngine::kDeadlineCheckStride pops),
  /// so a pathological skeleton walk overruns by at most one stride: the
  /// probe aborts without an answer (scalar Query throws UnavailableError;
  /// batched probes report ProbeStatus::kDeadlineExceeded), counts a
  /// serve.compose.budget_overruns + serve.deadline_exceeded, attributes
  /// overrun heat to its source shard for budget adaptation, and fails the
  /// compose breaker. A probe that finishes just past its budget keeps its
  /// exact answer and still counts the overrun.
  uint64_t probe_budget_ns = 0;
  /// Admission control: Execute rejects batches with more probes than this
  /// before running anything (0 = unlimited).
  size_t max_batch_probes = 0;
  /// Admission control: Execute sheds new batches while the process-global
  /// kernel-job queue ("serve.exec.queue_depth" gauge) is at or above this
  /// many pending jobs — the high-water mark that trades a fast typed
  /// rejection for a latency collapse. 0 disables.
  int64_t max_pending_jobs = 0;
  /// Circuit-breaker tuning shared by every per-shard breaker and the
  /// compose breaker (each slot gets its own seed offset for jitter).
  BreakerOptions breaker;
};

/// Per-call overrides for ShardedRlcService::Execute. The zero-argument
/// Execute overload fills these from ServiceOptions.
struct ExecuteLimits {
  uint64_t batch_budget_ns = 0;  ///< 0 = no batch deadline
  uint64_t probe_budget_ns = 0;  ///< 0 = no per-probe compose budget
  /// When admission control rejects the batch: false (default) throws
  /// OverloadedError; true returns an AnswerBatch with every status
  /// ProbeStatus::kShedded instead — for callers that must keep their
  /// submission loop alive under overload.
  bool shed_as_status = false;
};

/// Cumulative query-routing and build telemetry — a point-in-time
/// materialization of the service's metrics registry (stats() reads the
/// atomic counters; the struct itself holds plain values). Exact once the
/// service is quiescent; jobs running on the execution pool update the
/// underlying counters atomically.
///
/// Fault-free invariant: queries == intra_true + cross_refuted +
/// compose_probes (every probe ends in exactly one of the three tiers;
/// degraded probes are composed probes).
struct ServiceStats {
  uint64_t queries = 0;          ///< probes answered (scalar + batched)
  uint64_t intra_true = 0;       ///< answered true by a shard index alone
  uint64_t intra_miss = 0;       ///< same-shard probes the shard index missed
  uint64_t cross_refuted = 0;    ///< answered false by the boundary summary
  uint64_t compose_probes = 0;   ///< answered by cross-shard composition
                                 ///< (degraded index-free probes included)
  uint64_t compose_skeleton_hops = 0;  ///< boundary product states popped
  uint64_t compose_table_builds = 0;   ///< transition rows built lazily
  uint64_t compose_invalidations = 0;  ///< stale shard plans refreshed after
                                       ///< mutations
  uint64_t compose_expanded = 0;       ///< product states expanded on the fly
  uint64_t frontier_hits = 0;       ///< probes answered from a cached frontier
  uint64_t frontier_misses = 0;     ///< frontier builds installed in the cache
  uint64_t frontier_evictions = 0;  ///< cached frontiers dropped (stale after
                                    ///< a mutation, LRU capacity, or a
                                    ///< wholesale invalidation)
  uint64_t compose_budget_boosts = 0;    ///< shards boosted to the hot budget
  uint64_t compose_budget_releases = 0;  ///< boosts released after cold rounds
  uint64_t batches = 0;
  uint64_t batch_groups = 0;     ///< (shard, MR) groups executed
  uint64_t seq_cache_flushes = 0;    ///< constraint-memo capacity flushes
  uint64_t seq_cache_evictions = 0;  ///< memo entries dropped by flushes
  uint64_t updates_applied = 0;      ///< mutations that changed the graph
  uint64_t updates_deleted = 0;      ///< applied updates that were deletes
  uint64_t updates_duplicate = 0;    ///< no-op updates (insert of a present
                                     ///< edge, delete of an absent one)
  uint64_t updates_cross = 0;        ///< applied mutations of cross edges
  uint64_t shed = 0;                 ///< probes rejected by admission control
  uint64_t deadline_exceeded = 0;    ///< probes past their batch deadline
  uint64_t breaker_opened = 0;       ///< breaker transitions into kOpen
  uint64_t breaker_reclosed = 0;     ///< half-open -> closed recoveries
  uint64_t breaker_trials = 0;       ///< half-open trial admissions
  uint64_t breaker_degraded = 0;     ///< probes answered index-free because
                                     ///< their shard was broken (answers
                                     ///< still exact)
  uint64_t breaker_fail_fast = 0;    ///< probes refused: compose breaker open
  uint64_t compose_overruns = 0;     ///< composed probes over probe_budget_ns
  uint64_t shard_revives = 0;        ///< ReviveShard calls that completed
  double partition_seconds = 0.0;
  double index_build_seconds = 0.0;  ///< shard index builds
};

/// A serving instance bound to one graph. `g` must outlive the service.
/// Queries mutate internal memo tables and counters, so a service instance
/// is not thread-safe; run one instance per serving thread (they share the
/// immutable graph).
class ShardedRlcService {
 public:
  ShardedRlcService(const DiGraph& g, ServiceOptions options);

  /// Answers the RLC query (s, t, L+). Exact: equal to a whole-graph
  /// RlcIndex::Query for every input — including when the owning shard's
  /// breaker is open or the shard probe faults, in which case the probe is
  /// answered index-free (intra product BFS OR composition).
  /// \throws std::invalid_argument on out-of-range vertices or an invalid
  ///         constraint (empty, longer than k, or non-primitive);
  ///         UnavailableError when the probe needs composition and the
  ///         compose breaker is open (fail fast) or the probe faults.
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint);

  /// Answers every probe of `batch` (see class comment). On the fault-free
  /// path answers are identical to calling Query per probe, in submission
  /// order, and every status is kOk. Under faults/deadlines, each probe
  /// with statuses[i] == kOk still carries the exact answer; other probes
  /// report why they have none (see ProbeStatus).
  /// \throws std::invalid_argument like Query, plus on out-of-range
  ///         seq_ids; OverloadedError when admission control sheds the
  ///         batch (unless limits.shed_as_status).
  AnswerBatch Execute(const QueryBatch& batch);
  AnswerBatch Execute(const QueryBatch& batch, const ExecuteLimits& limits);

  /// Applies a batch of edge mutations in order (see class comment).
  /// Inserts of edges already present and deletes of absent edges are exact
  /// no-ops. Returns how many updates changed the graph. Subsequent queries
  /// answer exactly on the mutated graph.
  /// \throws std::invalid_argument on out-of-range vertices or labels
  ///         outside the base graph's alphabet (the whole batch is rejected
  ///         before anything is applied).
  size_t ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// Waits for (and swaps in) every in-flight background shard reseal —
  /// the deterministic sync point for tests and benches.
  void FinishReseals();

  /// Re-adopts one shard after its breaker tripped: in durable mode the
  /// shard index reloads from the newest snapshot generation and replays
  /// the intra-shard WAL tail (PR 6's recovery path, scoped to one shard);
  /// otherwise it rebuilds from the partition's shard graph and re-applies
  /// the live mutation overlay. Either way the fresh index answers exactly
  /// on the current mutated graph, the constraint memo flushes (its MR ids
  /// pointed into the old index), and the shard's breaker force-closes.
  /// The composition engine needs no refresh — its state is a function of
  /// the graph, which a revive does not change.
  /// \throws std::runtime_error when both the durable reload and the
  ///         rebuild fail; the old index then stays in place.
  void ReviveShard(uint32_t shard);

  /// Durable mode only: checkpoints a new snapshot generation (per-shard +
  /// service meta + compose-cache files, WAL switch, manifest commit,
  /// stale generation cleanup). Called automatically when the current WAL
  /// passes DurabilityOptions::checkpoint_wal_bytes. \throws
  /// std::runtime_error on I/O failure or an injected fault — the previous
  /// generation then stays the recovery target and the service remains
  /// usable; throws std::logic_error when durability is off.
  void Checkpoint();

  /// True when the service persists mutations (durability.dir was set).
  bool durable() const { return wal_.is_open(); }
  /// LSN of the last acknowledged (logged) mutation batch; 0 before any.
  uint64_t last_lsn() const { return last_lsn_; }
  /// Newest committed snapshot generation (durable mode).
  uint64_t generation() const { return generation_; }
  /// What the constructor found on disk (durable mode).
  const RecoveryInfo& recovery_info() const { return recovery_; }

  uint32_t k() const { return options_.indexer.k; }
  const GraphPartition& partition() const { return partition_; }
  const RlcIndex& shard_index(uint32_t s) const {
    return shard_dyn_[s]->index();
  }
  const DynamicRlcIndex& shard_dynamic(uint32_t s) const {
    return *shard_dyn_[s];
  }
  /// The cross-shard composition engine (compose.h).
  const CompositionEngine& composition() const { return *compose_; }
  /// Materializes the routing/build counters (thin shim over the metrics
  /// registry; see ServiceStats).
  ServiceStats stats() const;

  /// The per-instance metrics registry: every ServiceStats counter under
  /// "serve.*", per-shard composition counters ("serve.compose.shard.<i>"),
  /// and the per-stage latency histograms ("serve.stage.*_ns", recorded
  /// only while obs::Enabled()). Snapshot() it for percentiles/export.
  const obs::Registry& metrics() const { return metrics_; }

  /// Composed probes attributed to each source shard — the per-shard
  /// composition share of the routing pathology BENCH_serving tracks.
  std::vector<uint64_t> ShardComposeCounts() const;

  /// Current circuit-breaker states (exported live through the
  /// "serve.breaker.state.<i>" / ".compose" gauges: 0 closed, 1 open,
  /// 2 half-open).
  BreakerState shard_breaker_state(uint32_t shard) const {
    return shard_breakers_[shard].breaker.state();
  }
  BreakerState compose_breaker_state() const {
    return compose_breaker_.breaker.state();
  }

  /// Heap footprint: partition + shard indexes + composition state.
  uint64_t MemoryBytes() const;

 private:
  /// Bound on memoized constraint templates (see Resolve): the memo flushes
  /// when full, so template churn cannot grow the process without limit.
  static constexpr size_t kMaxCachedSequences = 1 << 16;

  /// Per distinct constraint: every shard's MR id. Resolved and validated
  /// once, memoized while cached (MR tables are frozen after build, so a
  /// flush is only a re-resolution cost).
  struct SeqEntry {
    std::vector<MrId> shard_mr;
  };

  const SeqEntry& Resolve(const LabelSeq& seq);

  /// True when the boundary summary proves no cross-shard witness path can
  /// exist for a probe from shard `ss` to shard `st`.
  bool RefutedByBoundary(uint32_t ss, uint32_t st,
                         const LabelSeq& seq) const {
    return !partition_.QuotientReaches(ss, st) ||
           !partition_.shard(ss).out_cross_labels.MayContainAny(seq.labels()) ||
           !partition_.shard(st).in_cross_labels.MayContainAny(seq.labels());
  }

  /// Steps 2+3 for one scalar probe (after any intra-shard miss).
  bool CrossAnswer(VertexId s, VertexId t, const LabelSeq& seq, uint32_t ss,
                   uint32_t st);

  /// One breaker plus its exported state gauge.
  struct BreakerSlot {
    CircuitBreaker breaker;
    obs::Gauge* state_gauge = nullptr;
  };

  /// Allow() with a lazy clock (closed breakers never read it), trial
  /// counting, and the state gauge kept current.
  CircuitBreaker::Decision BreakerDecide(BreakerSlot& slot);
  /// OnFailure/OnSuccess with transition counters + gauge updates.
  void BreakerFail(BreakerSlot& slot);
  void BreakerOk(BreakerSlot& slot);

  /// One scalar composed probe, behind the compose breaker and the
  /// serve.compose.probe failpoint. `need_intra` adds the index-free
  /// intra-shard product search (degraded same-shard probes: without a
  /// shard answer an intra witness may exist, and boundary refutation must
  /// be skipped). Exact on the mutated graph.
  /// \throws UnavailableError when the compose breaker denies or the probe
  ///         faults.
  bool ComposeProbe(VertexId s, VertexId t, const LabelSeq& seq,
                    uint32_t source_shard, bool need_intra);

  /// One budget-adaptation step (owner thread): runs the engine's adapt
  /// round, folds boosts/releases into the counters and refreshes the
  /// per-shard table-budget gauges. Cheap no-op below adapt_min_probes.
  void RunBudgetAdaptation(bool force_round = false);

  /// True when the edge exists in the service's current mutated graph.
  bool EdgePresent(VertexId src, Label label, VertexId dst) const;

  /// Batch validation shared by ApplyUpdates and WAL replay.
  void ValidateUpdates(std::span<const EdgeUpdate> updates) const;

  /// The mutation routing of ApplyUpdates, without the durability wrapper.
  size_t ApplyUpdatesInternal(std::span<const EdgeUpdate> updates);

  /// Builds every shard index from scratch — the non-recovery constructor
  /// path.
  void BuildIndexes();

  /// Durable-mode recovery: loads the newest usable generation (parallel
  /// per-shard snapshot loads). Returns false when the directory holds no
  /// generations (fresh store); throws when generations exist but none is
  /// loadable.
  bool TryRecover();

  /// Loads one generation directory into the service, or throws. The
  /// caller resets partial state on failure.
  void LoadGeneration(uint64_t gen);

  /// Replays wal-<G'>.log for every G' >= from_gen, LSN-gated.
  void ReplayServiceWal(uint64_t from_gen);

  std::string GenDir(uint64_t gen) const {
    return options_.durability.dir + "/gen-" + std::to_string(gen);
  }

  const DiGraph& g_;
  ServiceOptions options_;
  GraphPartition partition_;
  std::vector<std::unique_ptr<DynamicRlcIndex>> shard_dyn_;
  // Cross-shard composition over the boundary skeleton (created once the
  // shard indexes exist; reads partition_ and shard_dyn_ by reference).
  std::unique_ptr<CompositionEngine> compose_;
  // Scalar-path traversal scratch (Execute jobs carry their own).
  CompositionEngine::Scratch compose_scratch_;
  // Mutation bookkeeping: overlay inserts currently present (set + ordered
  // list for deterministic rebuilds) and base edges currently deleted.
  std::set<std::tuple<VertexId, Label, VertexId>> applied_set_;
  std::vector<EdgeUpdate> applied_inserts_;
  std::set<std::tuple<VertexId, Label, VertexId>> deleted_base_;
  // Batched-execution worker pool (null when exec_threads resolves to 1).
  // Only Execute uses it, and only between its fan-out barriers — the
  // service's single-caller contract is unchanged.
  std::unique_ptr<ThreadPool> exec_pool_;
  std::unordered_map<LabelSeq, SeqEntry, LabelSeqHash> seq_cache_;

  // Per-instance metrics. The registry owns every metric; the structs
  // below cache the references once so query/update paths never touch the
  // registry mutex. Counters are the source of truth behind stats().
  struct ServiceCounters {
    explicit ServiceCounters(obs::Registry& reg);
    obs::Counter& queries;
    obs::Counter& intra_true;
    obs::Counter& intra_miss;
    obs::Counter& cross_refuted;
    obs::Counter& compose_probes;        ///< serve.compose.probes
    obs::Counter& compose_skeleton_hops; ///< serve.compose.skeleton_hops
    obs::Counter& compose_table_builds;  ///< serve.compose.table_builds
    obs::Counter& compose_invalidations; ///< serve.compose.invalidations
    obs::Counter& compose_expanded;      ///< serve.compose.expanded
    obs::Counter& frontier_hits;         ///< serve.compose.frontier.hits
    obs::Counter& frontier_misses;       ///< serve.compose.frontier.misses
    obs::Counter& frontier_evictions;    ///< serve.compose.frontier.evictions
    obs::Counter& budget_boosts;         ///< serve.compose.budget.boosts
    obs::Counter& budget_releases;       ///< serve.compose.budget.releases
    obs::Counter& batches;
    obs::Counter& batch_groups;
    obs::Counter& seq_cache_flushes;
    obs::Counter& seq_cache_evictions;
    obs::Counter& updates_applied;
    obs::Counter& updates_deleted;
    obs::Counter& updates_duplicate;
    obs::Counter& updates_cross;
    obs::Counter& shed;                ///< serve.shed
    obs::Counter& deadline_exceeded;   ///< serve.deadline_exceeded
    obs::Counter& breaker_opened;      ///< serve.breaker.opened
    obs::Counter& breaker_reclosed;    ///< serve.breaker.reclosed
    obs::Counter& breaker_trials;      ///< serve.breaker.trials
    obs::Counter& breaker_degraded;    ///< serve.breaker.degraded_probes
    obs::Counter& breaker_fail_fast;   ///< serve.breaker.fail_fast
    obs::Counter& compose_overruns;    ///< serve.compose.budget_overruns
    obs::Counter& shard_revives;       ///< serve.breaker.revives
  };
  struct StageHistograms {
    explicit StageHistograms(obs::Registry& reg);
    obs::Histogram& execute_ns;        ///< whole Execute() call
    obs::Histogram& resolve_ns;        ///< constraint resolution + grouping
    obs::Histogram& shard_kernel_ns;   ///< per shard-phase kernel job
    obs::Histogram& route_ns;          ///< sequential routing pass
    obs::Histogram& compose_job_ns;    ///< per compose-phase job
    obs::Histogram& compose_probe_ns;  ///< per composed probe
    obs::Histogram& apply_updates_ns;
    obs::Histogram& checkpoint_ns;
  };
  obs::Registry metrics_;
  ServiceCounters c_{metrics_};
  StageHistograms h_{metrics_};
  std::vector<obs::Counter*> shard_compose_;  ///< serve.compose.shard.<i>
  /// serve.compose.table_budget.<i>: each shard's live effective transition
  /// -table budget (the adaptive-budget gauge; updated after adapt rounds).
  std::vector<obs::Gauge*> shard_budget_gauges_;
  // Fault-tolerance state: one breaker per shard plus one guarding the
  // composition engine (initialized in the constructor once the shard
  // count is known).
  std::vector<BreakerSlot> shard_breakers_;
  BreakerSlot compose_breaker_;
  double partition_seconds_ = 0.0;
  double index_build_seconds_ = 0.0;
  // Durability state (durable mode only; wal_ stays closed otherwise).
  WalWriter wal_;
  DurabilityManifest manifest_;
  uint64_t last_lsn_ = 0;
  uint64_t generation_ = 0;
  uint64_t max_gen_seen_ = 0;
  RecoveryInfo recovery_;
};

}  // namespace rlc
