// Cross-shard query composition over the boundary skeleton.
//
// The sharded service answers a cross-shard RLC probe (s, t, L+) without
// any whole-graph structure by composing three exact pieces over the
// *product graph* — states (v, p) where p ∈ [0, |L|) counts labels
// consumed modulo |L|, so a walk (s, 0) ⇝ (t, 0) of >= 1 edge spells
// exactly L^z for some z >= 1:
//
//   1. source-shard suffix: a forward product BFS from (s, 0) inside
//      shard(s) (base subgraph + live mutation overlay) finds every
//      product state with an outgoing cross edge carrying the label the
//      position demands — the skeleton seeds. Seeding with cross-edge
//      *successors* enforces the >= 1-cross-edge requirement, which keeps
//      composition disjoint from the shard-index intra tier: a purely
//      intra-shard witness is exactly the shard index's job.
//   2. skeleton hops: a BFS over boundary product states alternates
//      intra-shard closure with label-matched cross-edge hops. Closure
//      inside a shard comes from its per-(shard, constraint) boundary
//      transition table when the shard's boundary product graph fits the
//      table budget — row (b, p) is the bitset of boundary product states
//      (b', p') intra-reachable from (b, p), built lazily one product BFS
//      per touched row and reused across probes — or, over budget, from an
//      incremental per-probe product BFS whose visited set is shared by
//      every entry into that shard (monotone, so a probe expands each
//      shard's product graph at most once).
//   3. target-shard prefix: a reverse product BFS from (t, 0) inside
//      shard(t) precomputes the accept set A — every product state that
//      intra-reaches (t, 0). A skeleton entry into shard(t) answers true
//      iff it lands in A. Membership is intra-closed, so checking entries
//      on arrival is complete: an interior state of A reachable from an
//      entry puts the entry itself in A.
//
// Correctness does not depend on any shard index: every traversal walks
// the live mutated graph (shard subgraphs + DynamicRlcIndex overlays +
// the partition's cross-edge adjacency), so composed answers are exact on
// the mutated graph even while a shard's index is broken or resealing.
//
// Invalidation: transition tables are a function of one shard's intra
// product graph and its boundary list. The engine keeps a per-shard epoch,
// bumped by intra-shard mutations of that shard and by cross-edge changes
// incident to it (those can re-order boundary ordinals); PreparePlan
// lazily rebuilds exactly the stale shards' tables — the incremental
// refresh of the affected (shard, state-pair) rows. Reseals do not bump
// epochs (tables depend on the graph, not the index).
//
// Frontier cache: the phase-3 skeleton closure is a pure function of
// (constraint, skeleton seed set, graph) — the target only decides the
// early exit. Probes that share a seed set (100 probes fanning out of one
// source shard under one MR typically collapse to a handful of exit sets)
// therefore share one exhaustively-computed frontier: the set of every
// skeleton entry reachable from the seeds, grouped by shard. A hit
// replaces the whole skeleton BFS with a stamped-array scan of the
// frontier's target-shard slice against the accept set; answers are
// bit-identical with the cache on or off. Builds are single-flight (the
// first prober builds, contemporaries wait on the published entry), which
// keeps the skeleton-hop/expansion counter totals identical for every
// thread count. Entries are tagged with the engine's mutation epoch —
// OnIntraMutation/OnCrossMutation invalidate every cached frontier, since
// a frontier depends on the whole graph, not one shard.
//
// Adaptive table budgets: per-shard on-the-fly expansion volume and
// probe-budget overruns accumulate as heat; AdaptTableBudgets() (owner
// thread) boosts a hot shard's effective budget by hot_budget_multiplier
// so its transition tables materialize even when the boundary product
// graph exceeds the static budget, and releases the boost (dropping the
// tables on the next plan refresh) after cold_release_rounds quiet
// rounds. Budget changes never change answers — tables and on-the-fly
// expansion compute the same closure.
//
// Thread contract: PreparePlan, mutation notifications, AdaptTableBudgets
// and cache serialization are owner-thread-only. ComposedQuery and
// IntraProductReaches on a prepared plan are safe to fan out across a
// worker pool (per-call Scratch; lazy row construction is published with
// acquire/release atomics under a per-shard build mutex; the frontier
// cache is guarded by its own mutex + condition variable).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "rlc/core/dynamic_index.h"
#include "rlc/core/label_seq.h"
#include "rlc/serve/partitioner.h"
#include "rlc/serve/serving_status.h"

namespace rlc {

struct ComposeOptions {
  /// A shard's transition table is materialized only when its boundary
  /// product graph (|B_S| * |L|) has at most this many states; larger
  /// shards expand on the fly per probe. Bounds table memory at
  /// budget^2 bits per (shard, constraint). Hot shards get a boosted
  /// budget (see adaptive_tables).
  uint32_t table_budget_nodes = 2048;
  /// Plan-cache capacity (distinct constraints); the cache flushes when
  /// full, mirroring the service's constraint memo.
  size_t max_cached_plans = 1 << 12;
  /// Skeleton frontier cache capacity in entries (distinct (constraint,
  /// seed-set) keys, LRU-evicted, epoch-invalidated by mutations).
  /// 0 disables the cache; answers are identical either way.
  size_t frontier_cache_entries = 1024;
  /// Adaptive table budgets: boost hot shards past table_budget_nodes,
  /// release cold boosts. Off = the static budget for every shard.
  bool adaptive_tables = true;
  /// Effective budget of a boosted shard = table_budget_nodes * this.
  /// Values <= 1 disable adaptivity.
  uint32_t hot_budget_multiplier = 8;
  /// A shard is hot once it expanded at least this many product states on
  /// the fly since the last adapt round (0 = 4 * table_budget_nodes).
  /// Any probe-budget overrun attributed to the shard also marks it hot.
  uint64_t hot_expand_threshold = 0;
  /// A boosted shard whose tables went untouched for this many consecutive
  /// adapt rounds releases its boost (tables drop on the next refresh).
  uint32_t cold_release_rounds = 4;
  /// An adapt round only evaluates after at least this many composed
  /// probes, so scalar callers can invoke AdaptTableBudgets() per probe.
  uint64_t adapt_min_probes = 64;
};

/// Telemetry of one composed probe (the caller folds these into its
/// metrics registry; sums are independent of thread count).
struct ComposeResult {
  bool reachable = false;
  /// The deadline expired mid-traversal: `reachable` is meaningless, the
  /// probe carries no answer. Overrun is bounded by one deadline-check
  /// stride (kDeadlineCheckStride pops) or one table-row build.
  bool timed_out = false;
  bool frontier_hit = false;   ///< answered from a cached frontier
  bool frontier_miss = false;  ///< this call built + cached a frontier
  uint32_t skeleton_hops = 0;  ///< skeleton entries popped
  uint32_t expanded = 0;       ///< product states visited on the fly
  uint32_t table_rows_built = 0;  ///< transition rows built by this call
  uint32_t frontier_evictions = 0;  ///< cache entries this call dropped
                                    ///< (stale, replaced, or LRU capacity)
};

/// What one AdaptTableBudgets() round changed.
struct BudgetAdaptation {
  uint32_t boosts = 0;    ///< shards granted the boosted budget
  uint32_t releases = 0;  ///< boosted shards released back to static
};

class CompositionEngine {
 public:
  /// Deadline granularity: traversal loops read the clock once per this
  /// many pops/expansions, so deadline overrun inside a probe is bounded
  /// by one stride (plus at most one table-row build).
  static constexpr uint32_t kDeadlineCheckStride = 128;

  /// One boundary-transition row: bitset over the shard's boundary product
  /// states (ordinal * j + position).
  struct BoundaryRow {
    std::vector<uint64_t> bits;
  };

  /// Per-(shard, constraint) composition state. Rows build lazily and are
  /// published via atomics; everything else is immutable after
  /// PreparePlan installs the struct.
  struct ShardPlan {
    uint64_t epoch = 0;        ///< engine shard epoch at build time
    uint64_t budget_epoch = 0;  ///< shard budget epoch at build time
    bool tables = false;       ///< boundary product graph within budget
    uint32_t num_boundary = 0;
    /// local id -> boundary ordinal, -1 interior (tables only).
    std::vector<int32_t> boundary_ord;
    std::vector<std::atomic<const BoundaryRow*>> rows;  ///< |B| * j slots
    std::mutex build_mu;
    std::vector<std::unique_ptr<BoundaryRow>> owned;  ///< guarded by build_mu
    /// Row-build scratch, guarded by build_mu.
    std::vector<uint32_t> build_stamp;
    uint32_t build_counter = 0;
    std::vector<uint64_t> build_queue;
  };

  /// One constraint's composition plan.
  struct Plan {
    LabelSeq seq;
    uint32_t j = 0;  ///< |seq|
    std::vector<std::unique_ptr<ShardPlan>> shards;
  };

  /// Per-thread traversal scratch: stamped visited arrays over the global
  /// product space plus BFS queues. Reusable across probes and plans.
  struct Scratch {
    std::vector<uint32_t> fwd_stamp;   ///< source-shard forward BFS
    std::vector<uint32_t> acc_stamp;   ///< target-shard accept set A
    std::vector<uint32_t> exp_stamp;   ///< skeleton + on-the-fly expansion
    std::vector<uint32_t> exit_stamp;  ///< table exits already emitted
    uint32_t stamp = 0;
    std::vector<uint64_t> fwd_queue;
    std::vector<uint64_t> acc_queue;
    std::vector<uint64_t> skel_queue;
    std::vector<uint64_t> exp_queue;
  };

  /// `partition` and `shards` must outlive the engine; `shards` is the
  /// service's per-shard dynamic-index vector (the engine reads shard
  /// graphs through the partition and mutation overlays through the
  /// dynamic indexes — never the sealed indexes themselves).
  CompositionEngine(const GraphPartition& partition,
                    const std::vector<std::unique_ptr<DynamicRlcIndex>>& shards,
                    ComposeOptions options = {});

  /// Gets (building or refreshing stale shards as needed) the plan for
  /// `seq`. Owner thread only; the returned reference is stable until the
  /// cache flushes (max_cached_plans). When `invalidated` is non-null it
  /// receives how many stale shard plans this call rebuilt.
  const Plan& PreparePlan(const LabelSeq& seq, uint32_t* invalidated = nullptr);

  /// True iff a path s ⇝ t spelling seq^z (z >= 1) with >= 1 cross-shard
  /// edge exists on the current mutated graph. Thread-safe on a prepared
  /// plan (see class comment). A set `deadline` is enforced inside every
  /// traversal loop (stride kDeadlineCheckStride); on expiry the result
  /// has timed_out = true and carries no answer, only partial-work
  /// telemetry.
  ComposeResult ComposedQuery(VertexId s, VertexId t, const Plan& plan,
                              Scratch& scratch,
                              const Deadline& deadline = {}) const;

  /// True iff a purely intra-shard path s ⇝ t spelling seq^z (z >= 1)
  /// exists (s and t must share a shard) — the index-free exact intra
  /// answer for degraded probes whose shard index is unavailable. A set
  /// `deadline` is stride-checked; on expiry returns false and sets
  /// *timed_out (when given).
  bool IntraProductReaches(VertexId s, VertexId t, const LabelSeq& seq,
                           Scratch& scratch, const Deadline& deadline = {},
                           bool* timed_out = nullptr) const;

  /// Mutation notifications (owner thread): bump the affected shards'
  /// epochs so stale tables refresh on next PreparePlan, and the global
  /// mutation epoch so cached skeleton frontiers (functions of the whole
  /// graph) lazily invalidate.
  void OnIntraMutation(uint32_t shard) {
    ++epochs_[shard];
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnCrossMutation(uint32_t src_shard, uint32_t dst_shard) {
    ++epochs_[src_shard];
    if (dst_shard != src_shard) ++epochs_[dst_shard];
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Drops every cached plan and cached frontier (recovery / wholesale
  /// rebuild). Returns how many cached frontiers were dropped so the
  /// caller can fold them into its eviction counter.
  size_t InvalidateAll();

  /// One budget-adaptation round (owner thread, between batches): drains
  /// the per-shard heat gathered since the last round, boosts hot shards'
  /// effective table budgets and releases cold boosts. No-op until
  /// adapt_min_probes composed probes ran, unless `force_round`.
  BudgetAdaptation AdaptTableBudgets(bool force_round = false);

  /// Current effective table budget of `shard` (owner thread; gauge
  /// export and tests).
  uint32_t EffectiveTableBudget(uint32_t shard) const {
    return effective_budget_[shard];
  }
  bool ShardBoosted(uint32_t shard) const {
    return effective_budget_[shard] != options_.table_budget_nodes;
  }

  /// Attributes one probe-budget overrun to `shard` (thread-safe) —
  /// overrun evidence marks the shard hot for the next adapt round.
  void NoteShardOverrun(uint32_t shard) {
    if (shard < overrun_heat_.size())
      overrun_heat_[shard].fetch_add(1, std::memory_order_relaxed);
  }

  /// Serializes the built transition rows (warm-cache checkpoint payload;
  /// index_io.h frames it into a file). Deterministic for a fixed cache
  /// state. Owner thread only.
  std::vector<uint8_t> SerializeCache() const;

  /// Restores a SerializeCache payload. Returns false (leaving the cache
  /// cold but the engine fully usable) when the payload does not match
  /// the current partition shape. Owner thread only, before any
  /// concurrent queries.
  bool RestoreCache(std::span<const uint8_t> bytes);

  const ComposeOptions& options() const { return options_; }
  size_t num_cached_plans() const { return plans_.size(); }
  /// Installed (fully built) frontier-cache entries right now.
  size_t num_cached_frontiers() const;

  /// Heap footprint of the plan cache (tables, ordinal maps) and the
  /// frontier cache in bytes.
  uint64_t MemoryBytes() const;

 private:
  /// Cache key of one skeleton frontier: the constraint plus the sorted,
  /// deduplicated skeleton seed set (global product-state ids). The seed
  /// set already encodes the source shard and entry states, so probes
  /// from different sources that induce the same seeds legitimately
  /// share a frontier.
  struct FrontierKey {
    LabelSeq seq;
    std::vector<uint64_t> seeds;
    bool operator==(const FrontierKey& o) const {
      return seq == o.seq && seeds == o.seeds;
    }
  };
  struct FrontierKeyHash {
    size_t operator()(const FrontierKey& k) const {
      size_t h = LabelSeqHash{}(k.seq);
      for (uint64_t s : k.seeds) {
        h ^= std::hash<uint64_t>{}(s) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };
  /// One cached frontier: every skeleton entry reachable from the seeds,
  /// grouped by shard. `building` entries are placeholders owned by the
  /// in-flight builder (single-flight); they are not in the LRU list and
  /// readers wait on frontier_cv_ until the build completes or aborts.
  struct Frontier {
    uint64_t epoch = 0;  ///< mutation_epoch_ at build begin
    bool building = true;
    uint32_t hops = 0;  ///< skeleton pops the build cost (telemetry)
    std::vector<std::vector<uint64_t>> by_shard;  ///< entry pids per shard
    std::list<FrontierKey>::iterator lru_it;      ///< valid when !building
  };

  /// (Re)creates the per-shard plan for shard `s` of `plan`.
  void BuildShardPlan(Plan& plan, uint32_t s);

  /// Returns the transition row for boundary product state `row_idx`
  /// of shard `s`, building and publishing it on first use. `built` is
  /// incremented when this call did the build.
  const BoundaryRow* GetRow(ShardPlan& sp, uint32_t s, uint32_t row_idx,
                            const Plan& plan, uint32_t* built) const;

  void EnsureScratch(Scratch& scratch, uint32_t j) const;

  /// Erases `it` from the frontier map (and the LRU list when installed).
  /// Caller holds frontier_mu_.
  void EraseFrontierLocked(
      std::unordered_map<FrontierKey, std::shared_ptr<Frontier>,
                         FrontierKeyHash>::iterator it) const;

  const GraphPartition& partition_;
  const std::vector<std::unique_ptr<DynamicRlcIndex>>& shards_;
  ComposeOptions options_;
  std::vector<uint64_t> epochs_;
  std::unordered_map<LabelSeq, std::unique_ptr<Plan>, LabelSeqHash> plans_;
  VertexId num_vertices_ = 0;

  /// Global mutation epoch: any graph mutation invalidates every cached
  /// frontier (read by worker threads at lookup, hence atomic).
  std::atomic<uint64_t> mutation_epoch_{0};

  /// Frontier cache (guarded by frontier_mu_; mutable because lookups
  /// from const ComposedQuery mutate LRU order and single-flight state).
  mutable std::mutex frontier_mu_;
  mutable std::condition_variable frontier_cv_;
  mutable std::unordered_map<FrontierKey, std::shared_ptr<Frontier>,
                             FrontierKeyHash>
      frontiers_;
  mutable std::list<FrontierKey> frontier_lru_;  ///< front = most recent

  /// Per-shard heat drained by AdaptTableBudgets (relaxed; written by
  /// worker threads during probes).
  mutable std::vector<std::atomic<uint64_t>> expand_heat_;
  mutable std::vector<std::atomic<uint64_t>> pop_heat_;
  mutable std::vector<std::atomic<uint64_t>> overrun_heat_;
  mutable std::atomic<uint64_t> probes_since_adapt_{0};

  /// Owner-thread budget state: effective per-shard budget, the epoch that
  /// forces a plan refresh when the budget changes, and the consecutive
  /// quiet rounds of each boosted shard.
  std::vector<uint32_t> effective_budget_;
  std::vector<uint64_t> budget_epochs_;
  std::vector<uint32_t> cold_rounds_;
};

}  // namespace rlc
