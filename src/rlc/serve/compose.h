// Cross-shard query composition over the boundary skeleton.
//
// The sharded service answers a cross-shard RLC probe (s, t, L+) without
// any whole-graph structure by composing three exact pieces over the
// *product graph* — states (v, p) where p ∈ [0, |L|) counts labels
// consumed modulo |L|, so a walk (s, 0) ⇝ (t, 0) of >= 1 edge spells
// exactly L^z for some z >= 1:
//
//   1. source-shard suffix: a forward product BFS from (s, 0) inside
//      shard(s) (base subgraph + live mutation overlay) finds every
//      product state with an outgoing cross edge carrying the label the
//      position demands — the skeleton seeds. Seeding with cross-edge
//      *successors* enforces the >= 1-cross-edge requirement, which keeps
//      composition disjoint from the shard-index intra tier: a purely
//      intra-shard witness is exactly the shard index's job.
//   2. skeleton hops: a BFS over boundary product states alternates
//      intra-shard closure with label-matched cross-edge hops. Closure
//      inside a shard comes from its per-(shard, constraint) boundary
//      transition table when the shard's boundary product graph fits the
//      table budget — row (b, p) is the bitset of boundary product states
//      (b', p') intra-reachable from (b, p), built lazily one product BFS
//      per touched row and reused across probes — or, over budget, from an
//      incremental per-probe product BFS whose visited set is shared by
//      every entry into that shard (monotone, so a probe expands each
//      shard's product graph at most once).
//   3. target-shard prefix: a reverse product BFS from (t, 0) inside
//      shard(t) precomputes the accept set A — every product state that
//      intra-reaches (t, 0). A skeleton entry into shard(t) answers true
//      iff it lands in A. Membership is intra-closed, so checking entries
//      on arrival is complete: an interior state of A reachable from an
//      entry puts the entry itself in A.
//
// Correctness does not depend on any shard index: every traversal walks
// the live mutated graph (shard subgraphs + DynamicRlcIndex overlays +
// the partition's cross-edge adjacency), so composed answers are exact on
// the mutated graph even while a shard's index is broken or resealing.
//
// Invalidation: transition tables are a function of one shard's intra
// product graph and its boundary list. The engine keeps a per-shard epoch,
// bumped by intra-shard mutations of that shard and by cross-edge changes
// incident to it (those can re-order boundary ordinals); PreparePlan
// lazily rebuilds exactly the stale shards' tables — the incremental
// refresh of the affected (shard, state-pair) rows. Reseals do not bump
// epochs (tables depend on the graph, not the index).
//
// Thread contract: PreparePlan, mutation notifications and cache
// serialization are owner-thread-only. ComposedQuery and
// IntraProductReaches on a prepared plan are safe to fan out across a
// worker pool (per-call Scratch; lazy row construction is published with
// acquire/release atomics under a per-shard build mutex).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "rlc/core/dynamic_index.h"
#include "rlc/core/label_seq.h"
#include "rlc/serve/partitioner.h"

namespace rlc {

struct ComposeOptions {
  /// A shard's transition table is materialized only when its boundary
  /// product graph (|B_S| * |L|) has at most this many states; larger
  /// shards expand on the fly per probe. Bounds table memory at
  /// budget^2 bits per (shard, constraint).
  uint32_t table_budget_nodes = 2048;
  /// Plan-cache capacity (distinct constraints); the cache flushes when
  /// full, mirroring the service's constraint memo.
  size_t max_cached_plans = 1 << 12;
};

/// Telemetry of one composed probe (the caller folds these into its
/// metrics registry; sums are independent of thread count).
struct ComposeResult {
  bool reachable = false;
  uint32_t skeleton_hops = 0;  ///< skeleton entries popped
  uint32_t expanded = 0;       ///< product states visited on the fly
  uint32_t table_rows_built = 0;  ///< transition rows built by this call
};

class CompositionEngine {
 public:
  /// One boundary-transition row: bitset over the shard's boundary product
  /// states (ordinal * j + position).
  struct BoundaryRow {
    std::vector<uint64_t> bits;
  };

  /// Per-(shard, constraint) composition state. Rows build lazily and are
  /// published via atomics; everything else is immutable after
  /// PreparePlan installs the struct.
  struct ShardPlan {
    uint64_t epoch = 0;       ///< engine shard epoch at build time
    bool tables = false;      ///< boundary product graph within budget
    uint32_t num_boundary = 0;
    /// local id -> boundary ordinal, -1 interior (tables only).
    std::vector<int32_t> boundary_ord;
    std::vector<std::atomic<const BoundaryRow*>> rows;  ///< |B| * j slots
    std::mutex build_mu;
    std::vector<std::unique_ptr<BoundaryRow>> owned;  ///< guarded by build_mu
    /// Row-build scratch, guarded by build_mu.
    std::vector<uint32_t> build_stamp;
    uint32_t build_counter = 0;
    std::vector<uint64_t> build_queue;
  };

  /// One constraint's composition plan.
  struct Plan {
    LabelSeq seq;
    uint32_t j = 0;  ///< |seq|
    std::vector<std::unique_ptr<ShardPlan>> shards;
  };

  /// Per-thread traversal scratch: stamped visited arrays over the global
  /// product space plus BFS queues. Reusable across probes and plans.
  struct Scratch {
    std::vector<uint32_t> fwd_stamp;   ///< source-shard forward BFS
    std::vector<uint32_t> acc_stamp;   ///< target-shard accept set A
    std::vector<uint32_t> exp_stamp;   ///< skeleton + on-the-fly expansion
    std::vector<uint32_t> exit_stamp;  ///< table exits already emitted
    uint32_t stamp = 0;
    std::vector<uint64_t> fwd_queue;
    std::vector<uint64_t> acc_queue;
    std::vector<uint64_t> skel_queue;
    std::vector<uint64_t> exp_queue;
  };

  /// `partition` and `shards` must outlive the engine; `shards` is the
  /// service's per-shard dynamic-index vector (the engine reads shard
  /// graphs through the partition and mutation overlays through the
  /// dynamic indexes — never the sealed indexes themselves).
  CompositionEngine(const GraphPartition& partition,
                    const std::vector<std::unique_ptr<DynamicRlcIndex>>& shards,
                    ComposeOptions options = {});

  /// Gets (building or refreshing stale shards as needed) the plan for
  /// `seq`. Owner thread only; the returned reference is stable until the
  /// cache flushes (max_cached_plans). When `invalidated` is non-null it
  /// receives how many stale shard plans this call rebuilt.
  const Plan& PreparePlan(const LabelSeq& seq, uint32_t* invalidated = nullptr);

  /// True iff a path s ⇝ t spelling seq^z (z >= 1) with >= 1 cross-shard
  /// edge exists on the current mutated graph. Thread-safe on a prepared
  /// plan (see class comment).
  ComposeResult ComposedQuery(VertexId s, VertexId t, const Plan& plan,
                              Scratch& scratch) const;

  /// True iff a purely intra-shard path s ⇝ t spelling seq^z (z >= 1)
  /// exists (s and t must share a shard) — the index-free exact intra
  /// answer for degraded probes whose shard index is unavailable.
  bool IntraProductReaches(VertexId s, VertexId t, const LabelSeq& seq,
                           Scratch& scratch) const;

  /// Mutation notifications (owner thread): bump the affected shards'
  /// epochs so stale tables refresh on next PreparePlan.
  void OnIntraMutation(uint32_t shard) { ++epochs_[shard]; }
  void OnCrossMutation(uint32_t src_shard, uint32_t dst_shard) {
    ++epochs_[src_shard];
    if (dst_shard != src_shard) ++epochs_[dst_shard];
  }
  /// Drops every cached plan (recovery / wholesale rebuild).
  void InvalidateAll();

  /// Serializes the built transition rows (warm-cache checkpoint payload;
  /// index_io.h frames it into a file). Deterministic for a fixed cache
  /// state. Owner thread only.
  std::vector<uint8_t> SerializeCache() const;

  /// Restores a SerializeCache payload. Returns false (leaving the cache
  /// cold but the engine fully usable) when the payload does not match
  /// the current partition shape. Owner thread only, before any
  /// concurrent queries.
  bool RestoreCache(std::span<const uint8_t> bytes);

  const ComposeOptions& options() const { return options_; }
  size_t num_cached_plans() const { return plans_.size(); }

  /// Heap footprint of the plan cache (tables, ordinal maps) in bytes.
  uint64_t MemoryBytes() const;

 private:
  /// (Re)creates the per-shard plan for shard `s` of `plan`.
  void BuildShardPlan(Plan& plan, uint32_t s);

  /// Returns the transition row for boundary product state `row_idx`
  /// of shard `s`, building and publishing it on first use. `built` is
  /// incremented when this call did the build.
  const BoundaryRow* GetRow(ShardPlan& sp, uint32_t s, uint32_t row_idx,
                            const Plan& plan, uint32_t* built) const;

  void EnsureScratch(Scratch& scratch, uint32_t j) const;

  const GraphPartition& partition_;
  const std::vector<std::unique_ptr<DynamicRlcIndex>>& shards_;
  ComposeOptions options_;
  std::vector<uint64_t> epochs_;
  std::unordered_map<LabelSeq, std::unique_ptr<Plan>, LabelSeqHash> plans_;
  VertexId num_vertices_ = 0;
};

}  // namespace rlc
