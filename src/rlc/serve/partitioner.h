// Graph partitioning for the sharded serving subsystem.
//
// A GraphPartition splits one DiGraph into vertex-disjoint shards. Each
// shard keeps its intra-shard subgraph, re-labeled with dense local vertex
// ids, so a full per-shard RlcIndex can be built on it; edges whose
// endpoints land in different shards become *cross edges* and are
// summarized instead of indexed:
//
//  * boundary vertices — endpoints of cross edges — are flagged globally
//    and listed per shard;
//  * per shard, the labels of outgoing and incoming cross edges are folded
//    into 64-bit presence masks;
//  * the shard quotient graph (one node per shard, one arc per cross-edge
//    shard pair) is closed under reachability.
//
// Together these form the *boundary summary* the sharded service routes
// with. It composes cross-shard reachability conservatively but exactly on
// the refutation side: a path whose label word is L^z and that does not
// stay inside one shard must (a) leave the source shard over a cross edge
// whose label occurs in L, (b) enter the target shard the same way, and
// (c) induce a walk of cross arcs in the quotient graph. When any of these
// necessary conditions fails, the query is definitively false; otherwise
// the service falls back to its whole-graph engine (sharded_service.h).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rlc/graph/digraph.h"
#include "rlc/serve/vertex_order.h"

namespace rlc {

/// How vertices are assigned to shards.
enum class PartitionPolicy {
  kHash,   ///< splitmix64(v, seed) % num_shards — stateless and balanced
  kRange,  ///< v / ceil(n / num_shards) — contiguous id blocks, locality-
           ///< friendly when vertex ids correlate with communities
  kRangeOrdered,  ///< rank(v) / ceil(n / num_shards) under a locality
                  ///< heuristic (vertex_order.h) — recovers community
                  ///< locality when raw ids carry none
};

struct PartitionerOptions {
  uint32_t num_shards = 4;  ///< in [1, kMaxShards]
  PartitionPolicy policy = PartitionPolicy::kHash;
  uint64_t hash_seed = 0x51A2DED5ULL;  ///< salt for PartitionPolicy::kHash
  /// Ordering heuristic for PartitionPolicy::kRangeOrdered (ignored
  /// otherwise). GreatestConstraintFirst is the community agglomerator;
  /// kDegree/kReverseDegree shard by hubness.
  OrderHeuristic ordering = OrderHeuristic::kGreatestConstraintFirst;
  uint64_t order_seed = 0;  ///< tie-break seed for the ordering
};

/// Conservative 64-bit label-presence set (labels folded modulo 64).
/// MayContain never reports a false negative, so masks are safe for exact
/// refutation: "no label of L can be present" implies no such edge exists.
class LabelMask {
 public:
  void Add(Label l) { bits_ |= uint64_t{1} << (l & 63); }
  bool MayContain(Label l) const { return (bits_ >> (l & 63)) & 1; }

  /// True when any label of `labels` may be present.
  bool MayContainAny(std::span<const Label> labels) const {
    for (const Label l : labels) {
      if (MayContain(l)) return true;
    }
    return false;
  }

  bool empty() const { return bits_ == 0; }

 private:
  uint64_t bits_ = 0;
};

/// One shard: its local-id subgraph plus its slice of the boundary summary.
struct ShardInfo {
  DiGraph graph;                    ///< intra-shard edges, local vertex ids
  std::vector<VertexId> global_of;  ///< local id -> global id (ascending)
  std::vector<VertexId> boundary;   ///< local ids of boundary vertices, sorted
  LabelMask out_cross_labels;       ///< labels on cross edges leaving the shard
  LabelMask in_cross_labels;        ///< labels on cross edges entering the shard
};

/// A full partition of one graph: shard subgraphs, the global<->local vertex
/// id maps, and the boundary summary. Build once, query-side immutable.
class GraphPartition {
 public:
  /// More shards than this is a configuration error (the quotient closure
  /// is a dense num_shards^2 bitmap).
  static constexpr uint32_t kMaxShards = 4096;

  /// An empty zero-shard partition; assign Build()'s result over it.
  GraphPartition() = default;

  /// Partitions `g` according to `options`.
  /// \throws std::invalid_argument when num_shards is outside [1, kMaxShards].
  static GraphPartition Build(const DiGraph& g, const PartitionerOptions& options);

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const PartitionerOptions& options() const { return options_; }

  const ShardInfo& shard(uint32_t s) const { return shards_[s]; }

  /// Shard and local id of a global vertex (no range validation).
  uint32_t ShardOf(VertexId global) const { return shard_of_[global]; }
  VertexId LocalOf(VertexId global) const { return local_of_[global]; }
  VertexId GlobalOf(uint32_t s, VertexId local) const {
    return shards_[s].global_of[local];
  }

  /// Cross-shard edges in global vertex ids: build-time edges in
  /// source-vertex order, edges registered later (AddCrossEdge) appended.
  const std::vector<Edge>& cross_edges() const { return cross_edges_; }

  /// Registers a newly inserted cross-shard edge (serving-layer updates):
  /// refreshes the label masks, boundary flags/lists and the quotient
  /// closure, exactly as if the edge had been present at Build time.
  /// \throws std::invalid_argument when both endpoints share a shard.
  void AddCrossEdge(VertexId global_src, Label label, VertexId global_dst);

  /// Unregisters a deleted cross-shard edge (all parallel copies of the
  /// exact triple) and *shrinks* the boundary summary to match: label
  /// masks, boundary flags/lists and the quotient closure are recomputed
  /// from the remaining cross edges — masks and closure are monotone folds,
  /// so removal cannot be patched in place the way AddCrossEdge composes.
  /// \throws std::invalid_argument when both endpoints share a shard or no
  ///         such cross edge is registered.
  void RemoveCrossEdge(VertexId global_src, Label label, VertexId global_dst);

  /// True when `global` has at least one incident cross-shard edge.
  bool IsBoundary(VertexId global) const { return is_boundary_[global] != 0; }
  uint64_t num_boundary_vertices() const { return num_boundary_; }

  /// Outgoing cross-shard edges of a global vertex (neighbor ids are
  /// global). Empty for interior vertices. This is the skeleton adjacency
  /// the composition engine hops over (compose.h).
  std::span<const LabeledNeighbor> CrossOutEdges(VertexId global) const {
    return cross_out_[global];
  }

  /// True when a walk of >= 1 cross edges (with free movement inside each
  /// intermediate shard) can take shard `a` to shard `b`. For a == b this
  /// asks for a quotient cycle, i.e. whether a path can leave shard a and
  /// come back at all.
  bool QuotientReaches(uint32_t a, uint32_t b) const {
    return quotient_closure_[static_cast<size_t>(a) * num_shards() + b] != 0;
  }

  /// Heap footprint of the shard subgraphs, id maps and summary in bytes.
  uint64_t MemoryBytes() const;

 private:
  /// Recomputes the derived boundary summary (masks, boundary flags/lists,
  /// quotient closure) from cross_edges_ — the shrink path of
  /// RemoveCrossEdge.
  void RebuildSummary();

  /// BFS closure of a shard-quotient adjacency bitmap into `closure`.
  static void CloseQuotient(const std::vector<uint8_t>& adj, uint32_t ns,
                            std::vector<uint8_t>& closure);

  PartitionerOptions options_;
  std::vector<ShardInfo> shards_;
  std::vector<uint32_t> shard_of_;   // global vertex -> shard
  std::vector<VertexId> local_of_;   // global vertex -> local id in its shard
  std::vector<Edge> cross_edges_;    // global ids
  // Per-vertex outgoing cross-edge adjacency (global neighbor ids), the
  // forward skeleton view of cross_edges_.
  std::vector<std::vector<LabeledNeighbor>> cross_out_;
  std::vector<uint8_t> is_boundary_; // global vertex -> 0/1
  uint64_t num_boundary_ = 0;
  std::vector<uint8_t> quotient_closure_;  // num_shards^2, row-major
};

}  // namespace rlc
