// A per-engine circuit breaker: trips after consecutive query-path
// failures, fails fast while open, and recovers through half-open trial
// probes under exponential backoff with deterministic jitter.
//
// State machine:
//
//     kClosed --[failure_threshold consecutive failures]--> kOpen
//     kOpen   --[retry_at reached, next Allow()]----------> kHalfOpen
//     kHalfOpen --[success_threshold successes]-----------> kClosed
//     kHalfOpen --[any failure]--> kOpen (backoff doubled, capped)
//
// The breaker is a passive state machine over caller-supplied timestamps
// (obs::NowNanos() timebase in production, arbitrary values in tests — the
// fake clock is just "pass whatever you want"), so backoff timing is unit-
// testable without sleeping. It is not thread-safe; the sharded service
// owns one per shard plus one for the composition engine, all driven from the
// single-caller Execute/Query path. Jitter comes from a seeded xorshift so
// chaos runs reproduce; it decorrelates retry storms when many breakers
// trip together (each service instance seeds per slot).
//
// The closed-state fast path (`closed()` + OnSuccess with zero failures)
// touches two ints and never reads a clock — breaker bookkeeping on the
// no-fault serving path is a few predictable branches per *batch*.

#pragma once

#include <algorithm>
#include <cstdint>

namespace rlc {

enum class BreakerState : uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

inline const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

struct BreakerOptions {
  /// Consecutive failures that trip kClosed -> kOpen.
  uint32_t failure_threshold = 3;
  /// Consecutive half-open successes that re-close the breaker.
  uint32_t success_threshold = 1;
  /// Backoff before the first half-open trial.
  uint64_t initial_backoff_ns = 100'000'000;  // 100 ms
  /// Backoff cap; doubling stops here.
  uint64_t max_backoff_ns = 10'000'000'000;  // 10 s
  /// Backoff growth per re-open from half-open.
  double backoff_multiplier = 2.0;
  /// Uniform jitter added on top of the backoff: the trial is scheduled
  /// backoff * [1, 1 + jitter_fraction) after the trip.
  double jitter_fraction = 0.1;
  /// Seed for the jitter generator (0 picks a fixed default).
  uint64_t seed = 0;
};

class CircuitBreaker {
 public:
  enum class Decision : uint8_t {
    kAllow,  ///< closed: proceed normally
    kTrial,  ///< half-open: proceed, and report the outcome faithfully
    kDeny,   ///< open: fail fast / degrade, do not touch the engine
  };

  explicit CircuitBreaker(const BreakerOptions& options = {})
      : options_(options),
        rng_(options.seed != 0 ? options.seed : 0x9E3779B97F4A7C15ULL) {}

  BreakerState state() const { return state_; }
  bool closed() const { return state_ == BreakerState::kClosed; }
  /// Earliest time an open breaker admits a trial probe.
  uint64_t retry_at_ns() const { return retry_at_ns_; }
  /// The backoff the *next* re-open would schedule (pre-jitter).
  uint64_t current_backoff_ns() const { return backoff_ns_; }

  /// Gate for one unit of work against the protected engine. Moves
  /// kOpen -> kHalfOpen when the backoff has elapsed.
  Decision Allow(uint64_t now_ns) {
    switch (state_) {
      case BreakerState::kClosed:
        return Decision::kAllow;
      case BreakerState::kHalfOpen:
        return Decision::kTrial;
      case BreakerState::kOpen:
        if (now_ns < retry_at_ns_) return Decision::kDeny;
        state_ = BreakerState::kHalfOpen;
        successes_ = 0;
        return Decision::kTrial;
    }
    return Decision::kAllow;
  }

  /// Reports a successful probe/batch. Returns true when this success
  /// re-closed a half-open breaker (for the reclose counter/gauge).
  bool OnSuccess(uint64_t now_ns) {
    (void)now_ns;
    failures_ = 0;
    if (state_ != BreakerState::kHalfOpen) return false;
    if (++successes_ < options_.success_threshold) return false;
    state_ = BreakerState::kClosed;
    backoff_ns_ = options_.initial_backoff_ns;
    return true;
  }

  /// Reports a failed/timed-out probe or batch. Returns true when this
  /// failure tripped the breaker open (from closed or half-open).
  bool OnFailure(uint64_t now_ns) {
    if (state_ == BreakerState::kHalfOpen) {
      // A failed trial re-opens immediately with a longer backoff.
      backoff_ns_ = std::min<uint64_t>(
          options_.max_backoff_ns,
          static_cast<uint64_t>(static_cast<double>(backoff_ns_) *
                                options_.backoff_multiplier));
      Open(now_ns);
      return true;
    }
    if (state_ == BreakerState::kOpen) return false;
    if (++failures_ < options_.failure_threshold) return false;
    Open(now_ns);
    return true;
  }

  /// Force-closes (e.g. after the owning shard was revived from its
  /// durable store) and restarts the backoff ladder.
  void Reset() {
    state_ = BreakerState::kClosed;
    failures_ = 0;
    successes_ = 0;
    backoff_ns_ = options_.initial_backoff_ns;
    retry_at_ns_ = 0;
  }

 private:
  void Open(uint64_t now_ns) {
    state_ = BreakerState::kOpen;
    failures_ = 0;
    successes_ = 0;
    const uint64_t jitter = static_cast<uint64_t>(
        static_cast<double>(backoff_ns_) * options_.jitter_fraction *
        NextUnit());
    retry_at_ns_ = now_ns + backoff_ns_ + jitter;
  }

  /// xorshift64* draw in [0, 1).
  double NextUnit() {
    uint64_t x = rng_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_ = x;
    return static_cast<double>((x * 0x2545F4914F6CDD1DULL) >> 11) /
           static_cast<double>(uint64_t{1} << 53);
  }

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  uint32_t failures_ = 0;
  uint32_t successes_ = 0;
  uint64_t backoff_ns_ = options_.initial_backoff_ns;
  uint64_t retry_at_ns_ = 0;
  uint64_t rng_ = 0;
};

}  // namespace rlc
