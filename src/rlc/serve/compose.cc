#include "rlc/serve/compose.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "rlc/obs/metrics.h"
#include "rlc/util/common.h"

namespace rlc {

namespace {

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ReadU32(std::span<const uint8_t> bytes, size_t& off) {
  RLC_REQUIRE(off + 4 <= bytes.size(), "compose cache: truncated payload");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes[off + i]) << (8 * i);
  off += 4;
  return v;
}

uint64_t ReadU64(std::span<const uint8_t> bytes, size_t& off) {
  RLC_REQUIRE(off + 8 <= bytes.size(), "compose cache: truncated payload");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
  off += 8;
  return v;
}

}  // namespace

CompositionEngine::CompositionEngine(
    const GraphPartition& partition,
    const std::vector<std::unique_ptr<DynamicRlcIndex>>& shards,
    ComposeOptions options)
    : partition_(partition),
      shards_(shards),
      options_(options),
      epochs_(partition.num_shards(), 0),
      expand_heat_(partition.num_shards()),
      pop_heat_(partition.num_shards()),
      overrun_heat_(partition.num_shards()),
      effective_budget_(partition.num_shards(), options.table_budget_nodes),
      budget_epochs_(partition.num_shards(), 0),
      cold_rounds_(partition.num_shards(), 0) {
  for (uint32_t s = 0; s < partition.num_shards(); ++s) {
    num_vertices_ += static_cast<VertexId>(partition.shard(s).global_of.size());
  }
}

void CompositionEngine::BuildShardPlan(Plan& plan, uint32_t s) {
  auto sp = std::make_unique<ShardPlan>();
  sp->epoch = epochs_[s];
  sp->budget_epoch = budget_epochs_[s];
  const ShardInfo& shard = partition_.shard(s);
  sp->num_boundary = static_cast<uint32_t>(shard.boundary.size());
  const uint64_t states = static_cast<uint64_t>(sp->num_boundary) * plan.j;
  sp->tables = states > 0 && states <= effective_budget_[s];
  if (sp->tables) {
    sp->boundary_ord.assign(shard.graph.num_vertices(), -1);
    for (uint32_t i = 0; i < sp->num_boundary; ++i) {
      sp->boundary_ord[shard.boundary[i]] = static_cast<int32_t>(i);
    }
    sp->rows = std::vector<std::atomic<const BoundaryRow*>>(states);
  }
  plan.shards[s] = std::move(sp);
}

const CompositionEngine::Plan& CompositionEngine::PreparePlan(
    const LabelSeq& seq, uint32_t* invalidated) {
  if (invalidated) *invalidated = 0;
  auto it = plans_.find(seq);
  if (it == plans_.end()) {
    if (plans_.size() >= options_.max_cached_plans) plans_.clear();
    auto plan = std::make_unique<Plan>();
    plan->seq = seq;
    plan->j = seq.size();
    RLC_REQUIRE(plan->j >= 1, "CompositionEngine: empty constraint");
    plan->shards.resize(partition_.num_shards());
    for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
      BuildShardPlan(*plan, s);
    }
    it = plans_.emplace(seq, std::move(plan)).first;
    return *it->second;
  }
  Plan& plan = *it->second;
  uint32_t stale = 0;
  for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
    if (plan.shards[s]->epoch != epochs_[s] ||
        plan.shards[s]->budget_epoch != budget_epochs_[s]) {
      BuildShardPlan(plan, s);
      ++stale;
    }
  }
  if (invalidated) *invalidated = stale;
  return plan;
}

size_t CompositionEngine::InvalidateAll() {
  plans_.clear();
  std::lock_guard<std::mutex> lock(frontier_mu_);
  size_t dropped = 0;
  for (auto it = frontiers_.begin(); it != frontiers_.end();) {
    if (it->second->building) {
      // An in-flight builder owns its placeholder; it installs (or aborts)
      // after we return and stays consistent — mutation epochs, not this
      // wholesale flush, are what guard staleness.
      ++it;
      continue;
    }
    frontier_lru_.erase(it->second->lru_it);
    it = frontiers_.erase(it);
    ++dropped;
  }
  return dropped;
}

size_t CompositionEngine::num_cached_frontiers() const {
  std::lock_guard<std::mutex> lock(frontier_mu_);
  return frontier_lru_.size();
}

void CompositionEngine::EraseFrontierLocked(
    std::unordered_map<FrontierKey, std::shared_ptr<Frontier>,
                       FrontierKeyHash>::iterator it) const {
  if (!it->second->building) frontier_lru_.erase(it->second->lru_it);
  frontiers_.erase(it);
}

BudgetAdaptation CompositionEngine::AdaptTableBudgets(bool force_round) {
  BudgetAdaptation out;
  if (!options_.adaptive_tables || options_.hot_budget_multiplier <= 1) {
    return out;
  }
  if (!force_round && probes_since_adapt_.load(std::memory_order_relaxed) <
                          options_.adapt_min_probes) {
    return out;
  }
  probes_since_adapt_.store(0, std::memory_order_relaxed);
  const uint64_t hot = options_.hot_expand_threshold != 0
                           ? options_.hot_expand_threshold
                           : 4ull * options_.table_budget_nodes;
  const uint64_t boosted_budget = std::min<uint64_t>(
      static_cast<uint64_t>(options_.table_budget_nodes) *
          options_.hot_budget_multiplier,
      ~uint32_t{0});
  for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
    const uint64_t expanded =
        expand_heat_[s].exchange(0, std::memory_order_relaxed);
    const uint64_t pops = pop_heat_[s].exchange(0, std::memory_order_relaxed);
    const uint64_t overruns =
        overrun_heat_[s].exchange(0, std::memory_order_relaxed);
    const bool boosted = effective_budget_[s] != options_.table_budget_nodes;
    if (!boosted) {
      // Hot = heavy on-the-fly expansion (the work tables would replace) or
      // any probe-budget overrun attributed to this shard.
      if (expanded >= hot || overruns > 0) {
        effective_budget_[s] = static_cast<uint32_t>(boosted_budget);
        ++budget_epochs_[s];
        cold_rounds_[s] = 0;
        ++out.boosts;
      }
    } else if (expanded == 0 && pops == 0 && overruns == 0) {
      // A boosted shard stops expanding on the fly by design, so pops are
      // the keep-alive signal; only a shard whose tables nobody entered
      // counts as cold.
      if (++cold_rounds_[s] >= options_.cold_release_rounds) {
        effective_budget_[s] = options_.table_budget_nodes;
        ++budget_epochs_[s];
        cold_rounds_[s] = 0;
        ++out.releases;
      }
    } else {
      cold_rounds_[s] = 0;
    }
  }
  return out;
}

void CompositionEngine::EnsureScratch(Scratch& scratch, uint32_t j) const {
  const uint64_t states = static_cast<uint64_t>(num_vertices_) * j;
  const auto grow = [&](std::vector<uint32_t>& v) {
    if (v.size() < states) v.resize(states, 0);
  };
  grow(scratch.fwd_stamp);
  grow(scratch.acc_stamp);
  grow(scratch.exp_stamp);
  grow(scratch.exit_stamp);
  // Stamp 0 is reserved for "never visited" (fresh array cells), so a wrap
  // zeroes everything and restarts at 1.
  if (++scratch.stamp == 0) {
    std::fill(scratch.fwd_stamp.begin(), scratch.fwd_stamp.end(), 0u);
    std::fill(scratch.acc_stamp.begin(), scratch.acc_stamp.end(), 0u);
    std::fill(scratch.exp_stamp.begin(), scratch.exp_stamp.end(), 0u);
    std::fill(scratch.exit_stamp.begin(), scratch.exit_stamp.end(), 0u);
    scratch.stamp = 1;
  }
}

const CompositionEngine::BoundaryRow* CompositionEngine::GetRow(
    ShardPlan& sp, uint32_t s, uint32_t row_idx, const Plan& plan,
    uint32_t* built) const {
  const BoundaryRow* row = sp.rows[row_idx].load(std::memory_order_acquire);
  if (row) return row;
  std::lock_guard<std::mutex> lock(sp.build_mu);
  row = sp.rows[row_idx].load(std::memory_order_relaxed);
  if (row) return row;

  const uint32_t j = plan.j;
  const ShardInfo& shard = partition_.shard(s);
  const DynamicRlcIndex& dyn = *shards_[s];
  const uint64_t local_states =
      static_cast<uint64_t>(shard.graph.num_vertices()) * j;
  if (sp.build_stamp.size() < local_states) {
    sp.build_stamp.resize(local_states, 0);
  }
  if (++sp.build_counter == 0) {
    std::fill(sp.build_stamp.begin(), sp.build_stamp.end(), 0u);
    sp.build_counter = 1;
  }
  const uint32_t bstamp = sp.build_counter;

  auto fresh = std::make_unique<BoundaryRow>();
  fresh->bits.assign(
      (static_cast<uint64_t>(sp.num_boundary) * j + 63) / 64, 0);

  // Intra product BFS from the row's boundary state over the shard's
  // mutated graph (base subgraph + overlay minus removals); every boundary
  // product state reached — including the start itself — sets its bit.
  const VertexId b_local = shard.boundary[row_idx / j];
  sp.build_queue.clear();
  const uint64_t start = static_cast<uint64_t>(b_local) * j + row_idx % j;
  sp.build_stamp[start] = bstamp;
  sp.build_queue.push_back(start);
  for (size_t head = 0; head < sp.build_queue.size(); ++head) {
    const uint64_t pid = sp.build_queue[head];
    const VertexId lu = static_cast<VertexId>(pid / j);
    const uint32_t q = static_cast<uint32_t>(pid % j);
    const int32_t ord = sp.boundary_ord[lu];
    if (ord >= 0) {
      const uint64_t bit = static_cast<uint64_t>(ord) * j + q;
      fresh->bits[bit / 64] |= uint64_t{1} << (bit % 64);
    }
    const Label l = plan.seq[q];
    const uint32_t nq = (q + 1) % j;
    const auto visit = [&](VertexId lv) {
      const uint64_t npid = static_cast<uint64_t>(lv) * j + nq;
      if (sp.build_stamp[npid] == bstamp) return;
      sp.build_stamp[npid] = bstamp;
      sp.build_queue.push_back(npid);
    };
    for (const LabeledNeighbor& nb : shard.graph.OutEdgesWithLabel(lu, l)) {
      if (!dyn.OutEdgeRemoved(lu, nb)) visit(nb.v);
    }
    for (const LabeledNeighbor& nb : dyn.ExtraOut(lu)) {
      if (nb.label == l) visit(nb.v);
    }
  }

  const BoundaryRow* ptr = fresh.get();
  sp.owned.push_back(std::move(fresh));
  sp.rows[row_idx].store(ptr, std::memory_order_release);
  if (built) ++(*built);
  return ptr;
}

ComposeResult CompositionEngine::ComposedQuery(VertexId s, VertexId t,
                                               const Plan& plan,
                                               Scratch& scratch,
                                               const Deadline& deadline) const {
  ComposeResult result;
  probes_since_adapt_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t j = plan.j;
  EnsureScratch(scratch, j);
  const uint32_t stamp = scratch.stamp;
  const uint32_t ss = partition_.ShardOf(s);
  const uint32_t st = partition_.ShardOf(t);
  const auto pid_of = [j](VertexId v, uint32_t p) {
    return static_cast<uint64_t>(v) * j + p;
  };
  // In-BFS deadline gate: one clock read per kDeadlineCheckStride pops, so
  // overrun past the deadline is bounded by one stride of work (plus at
  // most one table-row build) instead of a whole skeleton walk.
  uint32_t dl_ticks = kDeadlineCheckStride;
  const bool bounded = deadline.active();
  const auto deadline_hit = [&]() {
    if (!bounded) return false;
    if (--dl_ticks != 0) return false;
    dl_ticks = kDeadlineCheckStride;
    return deadline.Expired(obs::NowNanos());
  };
  // A deadline that already expired (e.g. spent upstream in queueing or an
  // injected delay) aborts before any traversal — small probes must not
  // slip through inside the first stride.
  if (bounded && deadline.Expired(obs::NowNanos())) {
    result.timed_out = true;
    return result;
  }
  // Label-matched cross hop out of (u, q): push unseen skeleton entries.
  const auto emit_cross = [&](VertexId u, uint32_t q) {
    const Label l = plan.seq[q];
    const uint32_t nq = (q + 1) % j;
    for (const LabeledNeighbor& nb : partition_.CrossOutEdges(u)) {
      if (nb.label != l) continue;
      const uint64_t npid = pid_of(nb.v, nq);
      if (scratch.exp_stamp[npid] == stamp) continue;
      scratch.exp_stamp[npid] = stamp;
      scratch.skel_queue.push_back(npid);
    }
  };

  // Phase 1 — source-shard suffix: forward product BFS from (s, 0) inside
  // shard(s); cross edges leaving any visited state seed the skeleton.
  scratch.fwd_queue.clear();
  scratch.skel_queue.clear();
  {
    const ShardInfo& shard = partition_.shard(ss);
    const DynamicRlcIndex& dyn = *shards_[ss];
    const uint64_t start = pid_of(s, 0);
    scratch.fwd_stamp[start] = stamp;
    scratch.fwd_queue.push_back(start);
    for (size_t head = 0; head < scratch.fwd_queue.size(); ++head) {
      if (deadline_hit()) {
        result.timed_out = true;
        result.expanded += static_cast<uint32_t>(scratch.fwd_queue.size());
        return result;
      }
      const uint64_t pid = scratch.fwd_queue[head];
      const VertexId u = static_cast<VertexId>(pid / j);
      const uint32_t p = static_cast<uint32_t>(pid % j);
      emit_cross(u, p);
      const Label l = plan.seq[p];
      const uint32_t np = (p + 1) % j;
      const VertexId lu = partition_.LocalOf(u);
      const auto visit = [&](VertexId local_succ) {
        const uint64_t npid = pid_of(partition_.GlobalOf(ss, local_succ), np);
        if (scratch.fwd_stamp[npid] == stamp) return;
        scratch.fwd_stamp[npid] = stamp;
        scratch.fwd_queue.push_back(npid);
      };
      for (const LabeledNeighbor& nb : shard.graph.OutEdgesWithLabel(lu, l)) {
        if (!dyn.OutEdgeRemoved(lu, nb)) visit(nb.v);
      }
      for (const LabeledNeighbor& nb : dyn.ExtraOut(lu)) {
        if (nb.label == l) visit(nb.v);
      }
    }
    result.expanded += static_cast<uint32_t>(scratch.fwd_queue.size());
  }
  if (scratch.skel_queue.empty()) return result;

  // Phase 2 — target-shard prefix: reverse product BFS from (t, 0) inside
  // shard(t) marks the accept set A (states that intra-reach (t, 0)).
  {
    const ShardInfo& shard = partition_.shard(st);
    const DynamicRlcIndex& dyn = *shards_[st];
    scratch.acc_queue.clear();
    const uint64_t accept = pid_of(t, 0);
    scratch.acc_stamp[accept] = stamp;
    scratch.acc_queue.push_back(accept);
    for (size_t head = 0; head < scratch.acc_queue.size(); ++head) {
      if (deadline_hit()) {
        result.timed_out = true;
        result.expanded += static_cast<uint32_t>(scratch.acc_queue.size());
        return result;
      }
      const uint64_t pid = scratch.acc_queue[head];
      const VertexId v = static_cast<VertexId>(pid / j);
      const uint32_t r = static_cast<uint32_t>(pid % j);
      const uint32_t q = (r + j - 1) % j;
      const Label l = plan.seq[q];
      const VertexId lv = partition_.LocalOf(v);
      const auto visit = [&](VertexId local_pred) {
        const uint64_t npid = pid_of(partition_.GlobalOf(st, local_pred), q);
        if (scratch.acc_stamp[npid] == stamp) return;
        scratch.acc_stamp[npid] = stamp;
        scratch.acc_queue.push_back(npid);
      };
      for (const LabeledNeighbor& nb : shard.graph.InEdgesWithLabel(lv, l)) {
        if (!dyn.InEdgeRemoved(lv, nb)) visit(nb.v);
      }
      for (const LabeledNeighbor& nb : dyn.ExtraIn(lv)) {
        if (nb.label == l) visit(nb.v);
      }
    }
    result.expanded += static_cast<uint32_t>(scratch.acc_queue.size());
  }

  // Frontier cache: the exhaustive phase-3 closure is a pure function of
  // (constraint, seed set, graph), so probes sharing the (sorted) seed set
  // share one frontier. Lookup runs after phase 2 because a hit still
  // needs this probe's accept set — the answer is then a scan of the
  // frontier's shard(t) slice against acc_stamp, no skeleton BFS at all.
  // Builds are single-flight: exactly one prober computes each key, so
  // hop/expansion counter totals stay identical for every thread count.
  std::shared_ptr<Frontier> built;  // non-null → this call is the builder
  FrontierKey key;
  if (options_.frontier_cache_entries > 0) {
    key.seq = plan.seq;
    key.seeds.assign(scratch.skel_queue.begin(), scratch.skel_queue.end());
    std::sort(key.seeds.begin(), key.seeds.end());
    const uint64_t mepoch = mutation_epoch_.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(frontier_mu_);
    for (;;) {
      auto it = frontiers_.find(key);
      if (it == frontiers_.end()) {
        built = std::make_shared<Frontier>();
        built->epoch = mepoch;
        frontiers_.emplace(key, built);
        break;
      }
      std::shared_ptr<Frontier> f = it->second;
      if (!f->building && f->epoch != mepoch) {
        // Built against a pre-mutation graph: drop it and rebuild.
        EraseFrontierLocked(it);
        ++result.frontier_evictions;
        continue;
      }
      if (f->building) {
        // Single-flight wait for the in-flight builder (its completion is
        // a hit; its abort sends the first waiter to build).
        if (bounded) {
          const uint64_t rem = deadline.RemainingNs(obs::NowNanos());
          if (rem == 0) {
            result.timed_out = true;
            return result;
          }
          frontier_cv_.wait_for(lk, std::chrono::nanoseconds(std::min<uint64_t>(
                                        rem, uint64_t{1000000})));
        } else {
          frontier_cv_.wait(lk);
        }
        continue;  // the map may have changed; re-resolve the key
      }
      // Hit: the frontier is exhaustive, so reachability is "some entry in
      // shard(t) lies in this probe's accept set".
      frontier_lru_.splice(frontier_lru_.begin(), frontier_lru_, f->lru_it);
      lk.unlock();
      result.frontier_hit = true;
      for (const uint64_t epid : f->by_shard[st]) {
        if (scratch.acc_stamp[epid] == stamp) {
          result.reachable = true;
          break;
        }
      }
      return result;
    }
  }
  const bool exhaustive = built != nullptr;
  // A builder that bails (deadline) must clear its placeholder so waiters
  // wake and one of them takes over the build.
  const auto abort_build = [&]() {
    if (!exhaustive) return;
    std::lock_guard<std::mutex> lk(frontier_mu_);
    auto it = frontiers_.find(key);
    if (it != frontiers_.end() && it->second == built) frontiers_.erase(it);
    frontier_cv_.notify_all();
  };

  // Phase 3 — skeleton BFS. Entries are checked against A at pop time;
  // that is complete because A is intra-closed: any state an expansion
  // marks inside shard(t) that lies in A puts its own entry in A, and that
  // entry's pop already answered true (so exp-stamp dedup of later entries
  // cannot hide an accepting one). A frontier build runs the identical
  // loop minus the early exit (the cache stores the full closure); the
  // builder's own answer is the same pop-time accept check.
  for (size_t head = 0; head < scratch.skel_queue.size(); ++head) {
    if (deadline_hit()) {
      result.timed_out = true;
      abort_build();
      return result;
    }
    const uint64_t pid = scratch.skel_queue[head];
    const VertexId v = static_cast<VertexId>(pid / j);
    const uint32_t p = static_cast<uint32_t>(pid % j);
    ++result.skeleton_hops;
    const uint32_t sv = partition_.ShardOf(v);
    pop_heat_[sv].fetch_add(1, std::memory_order_relaxed);
    if (sv == st && scratch.acc_stamp[pid] == stamp) {
      result.reachable = true;
      if (!exhaustive) return result;
      // Building: keep walking (and still expand this entry) so the cached
      // frontier is the full closure, valid for any future target.
    }
    ShardPlan& sp = *plan.shards[sv];
    if (sp.tables) {
      // Boundary-transition row: every intra-reachable boundary exit, one
      // bitset scan. Skeleton entries are cross-edge heads, so v is always
      // a boundary vertex with a valid ordinal.
      const int32_t ord = sp.boundary_ord[partition_.LocalOf(v)];
      const uint32_t row_idx = static_cast<uint32_t>(ord) * j + p;
      const BoundaryRow* row =
          GetRow(sp, sv, row_idx, plan, &result.table_rows_built);
      const ShardInfo& shard = partition_.shard(sv);
      for (size_t w = 0; w < row->bits.size(); ++w) {
        uint64_t word = row->bits[w];
        while (word != 0) {
          const uint32_t bit =
              static_cast<uint32_t>(w * 64) + std::countr_zero(word);
          word &= word - 1;
          const VertexId exit_v = partition_.GlobalOf(sv, shard.boundary[bit / j]);
          const uint64_t exit_pid = pid_of(exit_v, bit % j);
          if (scratch.exit_stamp[exit_pid] == stamp) continue;
          scratch.exit_stamp[exit_pid] = stamp;
          emit_cross(exit_v, bit % j);
        }
      }
    } else {
      // Over-budget shard: expand the product graph on the fly. exp_stamp
      // is shared across every entry into this shard within the probe, so
      // the shard's product graph is walked at most once per probe.
      const ShardInfo& shard = partition_.shard(sv);
      const DynamicRlcIndex& dyn = *shards_[sv];
      scratch.exp_queue.clear();
      scratch.exp_queue.push_back(pid);
      for (size_t eh = 0; eh < scratch.exp_queue.size(); ++eh) {
        if (deadline_hit()) {
          result.timed_out = true;
          result.expanded += static_cast<uint32_t>(scratch.exp_queue.size());
          expand_heat_[sv].fetch_add(scratch.exp_queue.size(),
                                     std::memory_order_relaxed);
          abort_build();
          return result;
        }
        const uint64_t epid = scratch.exp_queue[eh];
        const VertexId u = static_cast<VertexId>(epid / j);
        const uint32_t q = static_cast<uint32_t>(epid % j);
        emit_cross(u, q);
        const Label l = plan.seq[q];
        const uint32_t nq = (q + 1) % j;
        const VertexId lu = partition_.LocalOf(u);
        const auto visit = [&](VertexId local_succ) {
          const uint64_t npid = pid_of(partition_.GlobalOf(sv, local_succ), nq);
          if (scratch.exp_stamp[npid] == stamp) return;
          scratch.exp_stamp[npid] = stamp;
          scratch.exp_queue.push_back(npid);
        };
        for (const LabeledNeighbor& nb : shard.graph.OutEdgesWithLabel(lu, l)) {
          if (!dyn.OutEdgeRemoved(lu, nb)) visit(nb.v);
        }
        for (const LabeledNeighbor& nb : dyn.ExtraOut(lu)) {
          if (nb.label == l) visit(nb.v);
        }
      }
      result.expanded += static_cast<uint32_t>(scratch.exp_queue.size());
      expand_heat_[sv].fetch_add(scratch.exp_queue.size(),
                                 std::memory_order_relaxed);
    }
  }

  if (exhaustive) {
    // skel_queue now holds every popped entry (append-only queue, fully
    // drained) — exactly the frontier. Group by shard and publish.
    built->hops = static_cast<uint32_t>(scratch.skel_queue.size());
    built->by_shard.assign(partition_.num_shards(), {});
    for (const uint64_t epid : scratch.skel_queue) {
      const VertexId ev = static_cast<VertexId>(epid / j);
      built->by_shard[partition_.ShardOf(ev)].push_back(epid);
    }
    std::lock_guard<std::mutex> lk(frontier_mu_);
    auto it = frontiers_.find(key);
    if (it != frontiers_.end() && it->second == built) {
      built->building = false;
      frontier_lru_.push_front(key);
      built->lru_it = frontier_lru_.begin();
      result.frontier_miss = true;
      while (frontier_lru_.size() > options_.frontier_cache_entries) {
        auto vit = frontiers_.find(frontier_lru_.back());
        EraseFrontierLocked(vit);
        ++result.frontier_evictions;
      }
    }
    frontier_cv_.notify_all();
  }
  return result;
}

bool CompositionEngine::IntraProductReaches(VertexId s, VertexId t,
                                            const LabelSeq& seq,
                                            Scratch& scratch,
                                            const Deadline& deadline,
                                            bool* timed_out) const {
  if (timed_out) *timed_out = false;
  const uint32_t ss = partition_.ShardOf(s);
  RLC_REQUIRE(ss == partition_.ShardOf(t),
              "IntraProductReaches: endpoints span shards "
                  << ss << " and " << partition_.ShardOf(t));
  const uint32_t j = seq.size();
  RLC_REQUIRE(j >= 1, "IntraProductReaches: empty constraint");
  EnsureScratch(scratch, j);
  const uint32_t stamp = scratch.stamp;
  const ShardInfo& shard = partition_.shard(ss);
  const DynamicRlcIndex& dyn = *shards_[ss];

  // Forward product BFS from (s, 0); accepting on *arrival* at (t, 0) via
  // an edge (never on the seed itself) enforces the >= 1-edge requirement,
  // which makes s == t demand a genuine aligned cycle.
  scratch.fwd_queue.clear();
  const uint64_t start = static_cast<uint64_t>(s) * j;
  scratch.fwd_stamp[start] = stamp;
  scratch.fwd_queue.push_back(start);
  uint32_t dl_ticks = kDeadlineCheckStride;
  const bool bounded = deadline.active();
  if (bounded && deadline.Expired(obs::NowNanos())) {
    if (timed_out) *timed_out = true;
    return false;
  }
  for (size_t head = 0; head < scratch.fwd_queue.size(); ++head) {
    if (bounded && --dl_ticks == 0) {
      dl_ticks = kDeadlineCheckStride;
      if (deadline.Expired(obs::NowNanos())) {
        if (timed_out) *timed_out = true;
        return false;
      }
    }
    const uint64_t pid = scratch.fwd_queue[head];
    const VertexId u = static_cast<VertexId>(pid / j);
    const uint32_t p = static_cast<uint32_t>(pid % j);
    const Label l = seq[p];
    const uint32_t np = (p + 1) % j;
    const VertexId lu = partition_.LocalOf(u);
    bool found = false;
    const auto visit = [&](VertexId local_succ) {
      const VertexId gv = partition_.GlobalOf(ss, local_succ);
      if (gv == t && np == 0) {
        found = true;
        return;
      }
      const uint64_t npid = static_cast<uint64_t>(gv) * j + np;
      if (scratch.fwd_stamp[npid] == stamp) return;
      scratch.fwd_stamp[npid] = stamp;
      scratch.fwd_queue.push_back(npid);
    };
    for (const LabeledNeighbor& nb : shard.graph.OutEdgesWithLabel(lu, l)) {
      if (!dyn.OutEdgeRemoved(lu, nb)) {
        visit(nb.v);
        if (found) return true;
      }
    }
    for (const LabeledNeighbor& nb : dyn.ExtraOut(lu)) {
      if (nb.label == l) {
        visit(nb.v);
        if (found) return true;
      }
    }
  }
  return false;
}

std::vector<uint8_t> CompositionEngine::SerializeCache() const {
  std::vector<uint8_t> out;
  AppendU32(out, partition_.num_shards());
  AppendU32(out, static_cast<uint32_t>(plans_.size()));
  // Deterministic payload: plans in constraint order, rows in slot order.
  std::vector<const Plan*> ordered;
  ordered.reserve(plans_.size());
  for (const auto& [seq, plan] : plans_) ordered.push_back(plan.get());
  std::sort(ordered.begin(), ordered.end(), [](const Plan* a, const Plan* b) {
    if (a->j != b->j) return a->j < b->j;
    for (uint32_t i = 0; i < a->j; ++i) {
      if (a->seq[i] != b->seq[i]) return a->seq[i] < b->seq[i];
    }
    return false;
  });
  for (const Plan* plan : ordered) {
    AppendU32(out, plan->j);
    for (uint32_t i = 0; i < plan->j; ++i) AppendU32(out, plan->seq[i]);
    for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
      const ShardPlan& sp = *plan->shards[s];
      out.push_back(sp.tables ? 1 : 0);
      AppendU32(out, sp.num_boundary);
      uint32_t built = 0;
      for (const auto& slot : sp.rows) {
        if (slot.load(std::memory_order_acquire) != nullptr) ++built;
      }
      AppendU32(out, built);
      if (!sp.tables) continue;
      const uint32_t words = static_cast<uint32_t>(
          (static_cast<uint64_t>(sp.num_boundary) * plan->j + 63) / 64);
      AppendU32(out, words);
      for (uint32_t idx = 0; idx < sp.rows.size(); ++idx) {
        const BoundaryRow* row = sp.rows[idx].load(std::memory_order_acquire);
        if (row == nullptr) continue;
        AppendU32(out, idx);
        for (const uint64_t w : row->bits) AppendU64(out, w);
      }
    }
  }
  return out;
}

bool CompositionEngine::RestoreCache(std::span<const uint8_t> bytes) {
  plans_.clear();
  size_t off = 0;
  try {
    if (ReadU32(bytes, off) != partition_.num_shards()) {
      plans_.clear();
      return false;
    }
    const uint32_t num_plans = ReadU32(bytes, off);
    for (uint32_t pi = 0; pi < num_plans; ++pi) {
      const uint32_t j = ReadU32(bytes, off);
      RLC_REQUIRE(j >= 1 && j <= kMaxK, "compose cache: bad constraint length");
      std::vector<Label> labels(j);
      for (uint32_t i = 0; i < j; ++i) labels[i] = ReadU32(bytes, off);
      const LabelSeq seq{std::span<const Label>(labels)};
      PreparePlan(seq);
      Plan& plan = *plans_.find(seq)->second;
      for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
        ShardPlan& sp = *plan.shards[s];
        RLC_REQUIRE(off < bytes.size(), "compose cache: truncated payload");
        const bool tables = bytes[off++] != 0;
        const uint32_t num_boundary = ReadU32(bytes, off);
        const uint32_t built = ReadU32(bytes, off);
        // A shape mismatch means the payload was written against a
        // different partition state: stay cold rather than trust it.
        if (tables != sp.tables || num_boundary != sp.num_boundary) {
          plans_.clear();
          return false;
        }
        if (!sp.tables) {
          if (built != 0) {
            plans_.clear();
            return false;
          }
          continue;
        }
        const uint32_t words = ReadU32(bytes, off);
        const uint32_t expect_words = static_cast<uint32_t>(
            (static_cast<uint64_t>(sp.num_boundary) * plan.j + 63) / 64);
        if (words != expect_words || built > sp.rows.size()) {
          plans_.clear();
          return false;
        }
        for (uint32_t r = 0; r < built; ++r) {
          const uint32_t idx = ReadU32(bytes, off);
          if (idx >= sp.rows.size() ||
              sp.rows[idx].load(std::memory_order_relaxed) != nullptr) {
            plans_.clear();
            return false;
          }
          auto row = std::make_unique<BoundaryRow>();
          row->bits.resize(words);
          for (uint32_t w = 0; w < words; ++w) {
            row->bits[w] = ReadU64(bytes, off);
          }
          const BoundaryRow* ptr = row.get();
          sp.owned.push_back(std::move(row));
          sp.rows[idx].store(ptr, std::memory_order_release);
        }
      }
    }
    if (off != bytes.size()) {
      plans_.clear();
      return false;
    }
  } catch (...) {
    plans_.clear();
    return false;
  }
  return true;
}

uint64_t CompositionEngine::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& [seq, plan] : plans_) {
    for (const auto& spp : plan->shards) {
      ShardPlan& sp = *spp;
      bytes += sizeof(ShardPlan);
      bytes += sp.boundary_ord.capacity() * sizeof(int32_t);
      bytes += sp.rows.size() * sizeof(std::atomic<const BoundaryRow*>);
      std::lock_guard<std::mutex> lock(sp.build_mu);
      for (const auto& row : sp.owned) {
        bytes += sizeof(BoundaryRow) + row->bits.capacity() * sizeof(uint64_t);
      }
      bytes += sp.build_stamp.capacity() * sizeof(uint32_t);
      bytes += sp.build_queue.capacity() * sizeof(uint64_t);
    }
  }
  {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    for (const auto& [key, f] : frontiers_) {
      // The key lives twice (map node + LRU list node).
      bytes += sizeof(Frontier) + 2 * key.seeds.capacity() * sizeof(uint64_t);
      for (const auto& slice : f->by_shard) {
        bytes += slice.capacity() * sizeof(uint64_t);
      }
    }
  }
  return bytes;
}

}  // namespace rlc
