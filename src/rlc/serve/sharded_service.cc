#include "rlc/serve/sharded_service.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "rlc/core/index_io.h"
#include "rlc/obs/trace.h"
#include "rlc/serve/kernel_jobs.h"
#include "rlc/util/failpoint.h"
#include "rlc/util/thread_pool.h"
#include "rlc/util/timer.h"

namespace rlc {

namespace fs = std::filesystem;

ShardedRlcService::ServiceCounters::ServiceCounters(obs::Registry& reg)
    : queries(reg.GetCounter("serve.queries")),
      intra_true(reg.GetCounter("serve.intra_true")),
      intra_miss(reg.GetCounter("serve.intra_miss")),
      cross_refuted(reg.GetCounter("serve.cross_refuted")),
      compose_probes(reg.GetCounter("serve.compose.probes")),
      compose_skeleton_hops(reg.GetCounter("serve.compose.skeleton_hops")),
      compose_table_builds(reg.GetCounter("serve.compose.table_builds")),
      compose_invalidations(reg.GetCounter("serve.compose.invalidations")),
      compose_expanded(reg.GetCounter("serve.compose.expanded")),
      frontier_hits(reg.GetCounter("serve.compose.frontier.hits")),
      frontier_misses(reg.GetCounter("serve.compose.frontier.misses")),
      frontier_evictions(reg.GetCounter("serve.compose.frontier.evictions")),
      budget_boosts(reg.GetCounter("serve.compose.budget.boosts")),
      budget_releases(reg.GetCounter("serve.compose.budget.releases")),
      batches(reg.GetCounter("serve.batches")),
      batch_groups(reg.GetCounter("serve.batch_groups")),
      seq_cache_flushes(reg.GetCounter("serve.seq_cache_flushes")),
      seq_cache_evictions(reg.GetCounter("serve.seq_cache_evictions")),
      updates_applied(reg.GetCounter("serve.updates_applied")),
      updates_deleted(reg.GetCounter("serve.updates_deleted")),
      updates_duplicate(reg.GetCounter("serve.updates_duplicate")),
      updates_cross(reg.GetCounter("serve.updates_cross")),
      shed(reg.GetCounter("serve.shed")),
      deadline_exceeded(reg.GetCounter("serve.deadline_exceeded")),
      breaker_opened(reg.GetCounter("serve.breaker.opened")),
      breaker_reclosed(reg.GetCounter("serve.breaker.reclosed")),
      breaker_trials(reg.GetCounter("serve.breaker.trials")),
      breaker_degraded(reg.GetCounter("serve.breaker.degraded_probes")),
      breaker_fail_fast(reg.GetCounter("serve.breaker.fail_fast")),
      compose_overruns(reg.GetCounter("serve.compose.budget_overruns")),
      shard_revives(reg.GetCounter("serve.breaker.revives")) {}

ShardedRlcService::StageHistograms::StageHistograms(obs::Registry& reg)
    : execute_ns(reg.GetHistogram("serve.stage.execute_ns")),
      resolve_ns(reg.GetHistogram("serve.stage.resolve_ns")),
      shard_kernel_ns(reg.GetHistogram("serve.stage.shard_kernel_job_ns")),
      route_ns(reg.GetHistogram("serve.stage.route_ns")),
      compose_job_ns(reg.GetHistogram("serve.stage.compose_job_ns")),
      compose_probe_ns(reg.GetHistogram("serve.stage.compose_probe_ns")),
      apply_updates_ns(reg.GetHistogram("serve.stage.apply_updates_ns")),
      checkpoint_ns(reg.GetHistogram("serve.stage.checkpoint_ns")) {}

ServiceStats ShardedRlcService::stats() const {
  ServiceStats s;
  s.queries = c_.queries.Value();
  s.intra_true = c_.intra_true.Value();
  s.intra_miss = c_.intra_miss.Value();
  s.cross_refuted = c_.cross_refuted.Value();
  s.compose_probes = c_.compose_probes.Value();
  s.compose_skeleton_hops = c_.compose_skeleton_hops.Value();
  s.compose_table_builds = c_.compose_table_builds.Value();
  s.compose_invalidations = c_.compose_invalidations.Value();
  s.compose_expanded = c_.compose_expanded.Value();
  s.frontier_hits = c_.frontier_hits.Value();
  s.frontier_misses = c_.frontier_misses.Value();
  s.frontier_evictions = c_.frontier_evictions.Value();
  s.compose_budget_boosts = c_.budget_boosts.Value();
  s.compose_budget_releases = c_.budget_releases.Value();
  s.batches = c_.batches.Value();
  s.batch_groups = c_.batch_groups.Value();
  s.seq_cache_flushes = c_.seq_cache_flushes.Value();
  s.seq_cache_evictions = c_.seq_cache_evictions.Value();
  s.updates_applied = c_.updates_applied.Value();
  s.updates_deleted = c_.updates_deleted.Value();
  s.updates_duplicate = c_.updates_duplicate.Value();
  s.updates_cross = c_.updates_cross.Value();
  s.shed = c_.shed.Value();
  s.deadline_exceeded = c_.deadline_exceeded.Value();
  s.breaker_opened = c_.breaker_opened.Value();
  s.breaker_reclosed = c_.breaker_reclosed.Value();
  s.breaker_trials = c_.breaker_trials.Value();
  s.breaker_degraded = c_.breaker_degraded.Value();
  s.breaker_fail_fast = c_.breaker_fail_fast.Value();
  s.compose_overruns = c_.compose_overruns.Value();
  s.shard_revives = c_.shard_revives.Value();
  s.partition_seconds = partition_seconds_;
  s.index_build_seconds = index_build_seconds_;
  return s;
}

std::vector<uint64_t> ShardedRlcService::ShardComposeCounts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shard_compose_.size());
  for (const obs::Counter* c : shard_compose_) counts.push_back(c->Value());
  return counts;
}

ShardedRlcService::ShardedRlcService(const DiGraph& g, ServiceOptions options)
    : g_(g), options_(std::move(options)) {
  Timer timer;
  partition_ = GraphPartition::Build(g_, options_.partition);
  partition_seconds_ = timer.ElapsedSeconds();
  shard_compose_.reserve(partition_.num_shards());
  shard_budget_gauges_.reserve(partition_.num_shards());
  for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
    shard_compose_.push_back(
        &metrics_.GetCounter("serve.compose.shard." + std::to_string(s)));
    shard_budget_gauges_.push_back(
        &metrics_.GetGauge("serve.compose.table_budget." + std::to_string(s)));
    shard_budget_gauges_.back()->Set(
        static_cast<int64_t>(options_.compose.table_budget_nodes));
  }

  // One breaker per shard + one for the composition engine, each with its
  // own jitter stream so coupled trips do not retry in lockstep.
  shard_breakers_.resize(partition_.num_shards());
  for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
    BreakerOptions bo = options_.breaker;
    bo.seed = (bo.seed != 0 ? bo.seed : 0x6A09E667F3BCC909ULL) + s;
    shard_breakers_[s].breaker = CircuitBreaker(bo);
    shard_breakers_[s].state_gauge =
        &metrics_.GetGauge("serve.breaker.state." + std::to_string(s));
  }
  {
    BreakerOptions bo = options_.breaker;
    bo.seed = (bo.seed != 0 ? bo.seed : 0x6A09E667F3BCC909ULL) +
              partition_.num_shards();
    compose_breaker_.breaker = CircuitBreaker(bo);
    compose_breaker_.state_gauge =
        &metrics_.GetGauge("serve.breaker.state.compose");
  }

  const bool is_durable = !options_.durability.dir.empty();
  if (is_durable) {
    std::error_code ec;
    fs::create_directories(options_.durability.dir, ec);
    if (ec) {
      throw std::runtime_error("ShardedRlcService: cannot create " +
                               options_.durability.dir + ": " + ec.message());
    }
  }

  timer.Reset();
  const uint64_t recover_t0 = obs::NowNanos();
  const bool recovered = is_durable && TryRecover();
  if (recovered) {
    metrics_.GetGauge("serve.recover.load_ns")
        .Set(static_cast<int64_t>(obs::NowNanos() - recover_t0));
  }
  if (!recovered) BuildIndexes();
  index_build_seconds_ = timer.ElapsedSeconds();

  // The composition engine reads the partition and the shard overlays by
  // reference, so it is created once those exist; WAL replay below routes
  // through ApplyUpdatesInternal, which already notifies it of mutations.
  compose_ = std::make_unique<CompositionEngine>(partition_, shard_dyn_,
                                                 options_.compose);
  if (recovered) {
    // Warm the transition tables from the recovered generation's
    // compose.snap. The file is a pure cache: absent, corrupt, or written
    // against a different partition shape all mean "start cold", never a
    // recovery failure.
    try {
      const std::vector<uint8_t> payload = ReadCompositionCache(
          GenDir(recovery_.generation) + "/compose.snap");
      compose_->RestoreCache(payload);
    } catch (const std::exception&) {
    }
  }

  const uint32_t exec_threads =
      ThreadPool::ResolveThreads(options_.exec_threads);
  if (exec_threads > 1) exec_pool_ = std::make_unique<ThreadPool>(exec_threads);

  if (is_durable) {
    if (recovered) {
      const uint64_t replay_t0 = obs::NowNanos();
      ReplayServiceWal(recovery_.generation);
      metrics_.GetGauge("serve.recover.wal_replay_ns")
          .Set(static_cast<int64_t>(obs::NowNanos() - replay_t0));
      metrics_.GetGauge("serve.recover.replayed_records")
          .Set(static_cast<int64_t>(recovery_.replayed_records));
    }
    // End every open at a clean generation boundary, then sweep files whose
    // generation the committed manifest no longer lists (leftovers of
    // interrupted checkpoints).
    Checkpoint();
    auto in_manifest = [&](uint64_t gen) {
      for (const SnapshotGeneration& mg : manifest_.generations) {
        if (mg.generation == gen) return true;
      }
      return false;
    };
    std::error_code ec;
    const std::string& dir = options_.durability.dir;
    for (const uint64_t gen : ListGenerationFiles(dir, "gen-", "")) {
      if (!in_manifest(gen)) fs::remove_all(GenDir(gen), ec);
    }
    for (const uint64_t gen : ListGenerationFiles(dir, "wal-", ".log")) {
      if (!in_manifest(gen)) fs::remove(WalPath(dir, gen), ec);
    }
  }
}

void ShardedRlcService::BuildIndexes() {
  // Build every shard index as an independent task on one worker pool. Each
  // task runs the sequential Algorithm 2 (the parallelism budget is spent
  // across shards, not within one), and always seals: the service serves
  // from the CSR layout. Nothing whole-graph is built — the composition
  // engine answers cross-shard probes from the shard graphs alone.
  const uint32_t num_shards = partition_.num_shards();
  const uint32_t threads =
      std::min(ThreadPool::ResolveThreads(options_.build_threads), num_shards);
  IndexerOptions build_opts = options_.indexer;
  build_opts.num_threads = 1;
  build_opts.seal = true;

  shard_dyn_.resize(num_shards);
  auto build_task = [&](uint32_t shard) {
    const DiGraph& shard_graph = partition_.shard(shard).graph;
    RlcIndexBuilder builder(shard_graph, build_opts);
    shard_dyn_[shard] = std::make_unique<DynamicRlcIndex>(
        shard_graph, builder.Build(), options_.reseal);
  };
  if (threads <= 1) {
    for (uint32_t shard = 0; shard < num_shards; ++shard) build_task(shard);
  } else {
    std::atomic<uint32_t> cursor{0};
    ThreadPool pool(threads);
    pool.Run([&](uint32_t) {
      for (uint32_t shard; (shard = cursor.fetch_add(1)) < num_shards;) {
        build_task(shard);
      }
    });
  }
}

bool ShardedRlcService::TryRecover() {
  const std::string& dir = options_.durability.dir;
  bool manifest_corrupt = false;
  try {
    manifest_ = ReadManifest(dir);
  } catch (const std::exception& e) {
    // Degrade to a directory scan: the snapshots carry their own
    // applied_lsn, the manifest is only the generation list.
    manifest_corrupt = true;
    recovery_.fallback_reason = e.what();
    const std::vector<uint64_t> gens = ListGenerationFiles(dir, "gen-", "");
    for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
      manifest_.generations.push_back({*it, 0});
    }
  }
  for (const SnapshotGeneration& g : manifest_.generations) {
    max_gen_seen_ = std::max(max_gen_seen_, g.generation);
  }
  for (const uint64_t gen : ListGenerationFiles(dir, "gen-", "")) {
    max_gen_seen_ = std::max(max_gen_seen_, gen);
  }
  for (const uint64_t gen : ListGenerationFiles(dir, "wal-", ".log")) {
    max_gen_seen_ = std::max(max_gen_seen_, gen);
  }
  if (manifest_.generations.empty()) return false;

  std::string first_error = recovery_.fallback_reason;
  for (size_t i = 0; i < manifest_.generations.size(); ++i) {
    const uint64_t gen = manifest_.generations[i].generation;
    try {
      LoadGeneration(gen);
      recovery_.recovered = true;
      recovery_.generation = gen;
      recovery_.snapshot_lsn = last_lsn_;
      recovery_.fell_back = i > 0 || manifest_corrupt;
      return true;
    } catch (const std::exception& e) {
      if (first_error.empty()) first_error = e.what();
      recovery_.fell_back = true;
      if (recovery_.fallback_reason.empty()) {
        recovery_.fallback_reason = e.what();
      }
      // A failed attempt may have partially mutated the service; reset
      // everything LoadGeneration touches before the next candidate.
      shard_dyn_.clear();
      applied_set_.clear();
      applied_inserts_.clear();
      deleted_base_.clear();
      last_lsn_ = 0;
      partition_ = GraphPartition::Build(g_, options_.partition);
    }
  }
  // Durable generations exist but none is loadable: rebuilding over them
  // would silently discard acknowledged data.
  throw std::runtime_error(
      "ShardedRlcService: no usable snapshot generation in " + dir + " (" +
      first_error + ")");
}

void ShardedRlcService::LoadGeneration(uint64_t gen) {
  const std::string gdir = GenDir(gen);
  LoadedSnapshot meta = LoadSnapshotFile(gdir + "/service.snap");
  auto check_range = [&](const EdgeUpdate& e) {
    if (e.src >= g_.num_vertices() || e.dst >= g_.num_vertices() ||
        e.label >= g_.num_labels()) {
      throw std::runtime_error(gdir +
                               "/service.snap: overlay edge out of range");
    }
  };
  for (const EdgeUpdate& e : meta.inserted) check_range(e);
  for (const EdgeUpdate& e : meta.removed) check_range(e);

  // Per-shard snapshot loads fan out across the build pool: each shard
  // parses, adopts and RestoreOverlay()s independently.
  const uint32_t num_shards = partition_.num_shards();
  shard_dyn_.clear();
  shard_dyn_.resize(num_shards);
  std::vector<std::string> shard_errors(num_shards);
  auto load_shard = [&](uint32_t shard) {
    try {
      const std::string path =
          gdir + "/shard-" + std::to_string(shard) + ".snap";
      LoadedSnapshot snap = LoadSnapshotFile(path);
      if (!snap.index) {
        throw std::runtime_error(path + " has no embedded index");
      }
      auto dyn = std::make_unique<DynamicRlcIndex>(
          partition_.shard(shard).graph, std::move(*snap.index),
          options_.reseal);
      dyn->RestoreOverlay(snap.inserted, snap.removed);
      shard_dyn_[shard] = std::move(dyn);
    } catch (const std::exception& e) {
      shard_errors[shard] = e.what();
    }
  };
  const uint32_t threads =
      std::min(ThreadPool::ResolveThreads(options_.build_threads), num_shards);
  if (threads <= 1) {
    for (uint32_t shard = 0; shard < num_shards; ++shard) load_shard(shard);
  } else {
    std::atomic<uint32_t> cursor{0};
    ThreadPool pool(threads);
    pool.Run([&](uint32_t) {
      for (uint32_t shard; (shard = cursor.fetch_add(1)) < num_shards;) {
        load_shard(shard);
      }
    });
  }
  for (const std::string& err : shard_errors) {
    if (!err.empty()) throw std::runtime_error(err);
  }

  // Bookkeeping + boundary summary: the partition was built from the base
  // graph, so replaying the *net* cross-edge changes reproduces the exact
  // current cross-edge set (the summaries are a function of it).
  for (const EdgeUpdate& e : meta.inserted) {
    applied_set_.insert({e.src, e.label, e.dst});
    applied_inserts_.push_back({e.src, e.label, e.dst, EdgeOp::kInsert});
    if (partition_.ShardOf(e.src) != partition_.ShardOf(e.dst)) {
      partition_.AddCrossEdge(e.src, e.label, e.dst);
    }
  }
  for (const EdgeUpdate& e : meta.removed) {
    deleted_base_.insert({e.src, e.label, e.dst});
    if (partition_.ShardOf(e.src) != partition_.ShardOf(e.dst)) {
      partition_.RemoveCrossEdge(e.src, e.label, e.dst);
    }
  }
  last_lsn_ = meta.applied_lsn;
}

void ShardedRlcService::ReplayServiceWal(uint64_t from_gen) {
  const std::string& dir = options_.durability.dir;
  for (const uint64_t gen : ListGenerationFiles(dir, "wal-", ".log")) {
    if (gen < from_gen) continue;
    const WalReadResult res = ReadWalFile(WalPath(dir, gen));
    recovery_.dropped_wal_bytes += res.dropped_bytes;
    for (const WalRecord& record : res.records) {
      if (record.lsn <= last_lsn_) continue;  // already in the snapshot
      ValidateUpdates(record.updates);
      ApplyUpdatesInternal(record.updates);
      last_lsn_ = record.lsn;
      ++recovery_.replayed_records;
    }
  }
}

void ShardedRlcService::Checkpoint() {
  const std::string& dir = options_.durability.dir;
  if (dir.empty()) {
    throw std::logic_error("ShardedRlcService::Checkpoint: durability is off");
  }
  obs::ScopedSpan span(h_.checkpoint_ns, "serve.checkpoint");
  const uint64_t next = std::max(generation_, max_gen_seen_) + 1;
  const std::string gdir = GenDir(next);
  std::error_code ec;
  fs::create_directories(gdir, ec);
  if (ec) {
    throw std::runtime_error("ShardedRlcService::Checkpoint: cannot create " +
                             gdir + ": " + ec.message());
  }
  for (uint32_t shard = 0; shard < partition_.num_shards(); ++shard) {
    WriteSnapshotFile(gdir + "/shard-" + std::to_string(shard) + ".snap",
                      last_lsn_, shard_dyn_[shard]->inserted_edges(),
                      shard_dyn_[shard]->removed_edges(),
                      &shard_dyn_[shard]->index());
  }
  // Warm-cache checkpoint of the composition engine's built transition
  // rows: recovery restores them so the first cross-shard probes after a
  // restart skip the lazy rebuilds. Correctness never depends on it.
  if (compose_ != nullptr) {
    const std::vector<uint8_t> payload = compose_->SerializeCache();
    WriteCompositionCache(gdir + "/compose.snap", payload);
  }
  std::vector<EdgeUpdate> removed;
  removed.reserve(deleted_base_.size());
  for (const auto& [src, label, dst] : deleted_base_) {
    removed.push_back({src, label, dst, EdgeOp::kDelete});
  }
  WriteSnapshotFile(gdir + "/service.snap", last_lsn_, applied_inserts_,
                    removed, /*index=*/nullptr);
  // Switch the WAL before the commit: batches acknowledged from here land
  // in wal-<next>; if the commit below never happens, recovery targets the
  // previous generation and still replays them (every WAL file at or above
  // the recovered generation is walked, LSN-gated).
  const std::string previous_wal = wal_.path();
  try {
    wal_.Open(WalPath(dir, next));
  } catch (...) {
    if (!previous_wal.empty()) wal_.Open(previous_wal);
    throw;
  }
  DurabilityManifest m;
  m.generations.push_back({next, last_lsn_});
  const uint32_t keep =
      std::max<uint32_t>(1, options_.durability.keep_generations);
  for (const SnapshotGeneration& g : manifest_.generations) {
    if (m.generations.size() >= keep) break;
    m.generations.push_back(g);
  }
  CommitManifest(dir, m);  // the durability point
  FailpointHit(failpoints::kCheckpointAfterCommit);
  for (const SnapshotGeneration& g : manifest_.generations) {
    bool kept = false;
    for (const SnapshotGeneration& k : m.generations) {
      kept = kept || k.generation == g.generation;
    }
    if (!kept) {
      fs::remove_all(GenDir(g.generation), ec);
      fs::remove(WalPath(dir, g.generation), ec);
    }
  }
  manifest_ = std::move(m);
  generation_ = next;
  max_gen_seen_ = std::max(max_gen_seen_, next);
}

const ShardedRlcService::SeqEntry& ShardedRlcService::Resolve(
    const LabelSeq& seq) {
  const auto it = seq_cache_.find(seq);
  if (it != seq_cache_.end()) return it->second;

  // Bound the memo so adversarial template churn cannot grow a long-lived
  // serving process without limit; a flush only costs re-resolution.
  // Execute pre-flushes instead (it holds entry pointers across inserts).
  if (seq_cache_.size() >= kMaxCachedSequences) {
    c_.seq_cache_flushes.Inc();
    c_.seq_cache_evictions.Add(seq_cache_.size());
    seq_cache_.clear();
  }
  RlcIndex::ValidateConstraint(seq, options_.indexer.k);
  SeqEntry entry;
  entry.shard_mr.resize(partition_.num_shards());
  for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
    entry.shard_mr[s] = shard_dyn_[s]->index().FindMr(seq);
  }
  // unordered_map references are stable across later inserts.
  return seq_cache_.emplace(seq, std::move(entry)).first->second;
}

CircuitBreaker::Decision ShardedRlcService::BreakerDecide(BreakerSlot& slot) {
  // The closed fast path never reads the clock — breaker bookkeeping on a
  // healthy service is a load and a branch.
  if (slot.breaker.closed()) return CircuitBreaker::Decision::kAllow;
  const CircuitBreaker::Decision d = slot.breaker.Allow(obs::NowNanos());
  if (d == CircuitBreaker::Decision::kTrial) {
    c_.breaker_trials.Inc();
    slot.state_gauge->Set(static_cast<int64_t>(slot.breaker.state()));
  }
  return d;
}

void ShardedRlcService::BreakerFail(BreakerSlot& slot) {
  if (slot.breaker.OnFailure(obs::NowNanos())) {
    c_.breaker_opened.Inc();
    slot.state_gauge->Set(static_cast<int64_t>(slot.breaker.state()));
  }
}

void ShardedRlcService::BreakerOk(BreakerSlot& slot) {
  if (slot.breaker.OnSuccess(0)) {
    c_.breaker_reclosed.Inc();
    slot.state_gauge->Set(static_cast<int64_t>(slot.breaker.state()));
  }
}

bool ShardedRlcService::ComposeProbe(VertexId s, VertexId t,
                                     const LabelSeq& seq, uint32_t source_shard,
                                     bool need_intra) {
  if (BreakerDecide(compose_breaker_) == CircuitBreaker::Decision::kDeny) {
    c_.breaker_fail_fast.Inc();
    throw UnavailableError(
        "ShardedRlcService: compose breaker is open (fail fast)");
  }
  c_.compose_probes.Inc();
  shard_compose_[source_shard]->Inc();
  try {
    const bool metrics_on = obs::Enabled();
    const bool timed = metrics_on || options_.probe_budget_ns != 0;
    // The budget clock starts before the failpoint so injected probe
    // delays consume budget exactly like real traversal time — the chaos
    // pin for bounded overrun depends on this ordering.
    const uint64_t t0 = timed ? obs::NowNanos() : 0;
    const Deadline probe_deadline =
        Deadline::After(options_.probe_budget_ns, t0);
    FailpointHitFast(failpoints::kServeComposeProbe);
    uint32_t invalidated = 0;
    const CompositionEngine::Plan& plan =
        compose_->PreparePlan(seq, &invalidated);
    if (invalidated > 0) c_.compose_invalidations.Add(invalidated);
    // Degraded same-shard probes OR the index-free intra answer with the
    // composed one: composition only covers walks using >= 1 cross edge,
    // the intra product search covers the rest, and both are exact on the
    // mutated graph.
    bool probe_timed_out = false;
    bool answer = need_intra &&
                  compose_->IntraProductReaches(s, t, seq, compose_scratch_,
                                                probe_deadline,
                                                &probe_timed_out);
    if (!answer && !probe_timed_out) {
      const ComposeResult r = compose_->ComposedQuery(
          s, t, plan, compose_scratch_, probe_deadline);
      answer = r.reachable;
      probe_timed_out = r.timed_out;
      c_.compose_skeleton_hops.Add(r.skeleton_hops);
      c_.compose_expanded.Add(r.expanded);
      if (r.table_rows_built > 0) {
        c_.compose_table_builds.Add(r.table_rows_built);
      }
      if (r.frontier_hit) c_.frontier_hits.Inc();
      if (r.frontier_miss) c_.frontier_misses.Inc();
      if (r.frontier_evictions > 0) {
        c_.frontier_evictions.Add(r.frontier_evictions);
      }
    }
    const uint64_t elapsed = timed ? obs::NowNanos() - t0 : 0;
    if (probe_timed_out) {
      // The budget expired *inside* the traversal: the probe carries no
      // answer (overrun bounded by one deadline-check stride). The overrun
      // is compose-breaker failure evidence and marks the source shard hot
      // for budget adaptation.
      c_.compose_overruns.Inc();
      c_.deadline_exceeded.Inc();
      compose_->NoteShardOverrun(source_shard);
      BreakerFail(compose_breaker_);
      RunBudgetAdaptation();
      throw UnavailableError(
          "ShardedRlcService: composed probe exceeded probe_budget_ns");
    }
    if (metrics_on) h_.compose_probe_ns.Record(elapsed);
    if (options_.probe_budget_ns != 0 && elapsed > options_.probe_budget_ns) {
      // Finished within one check stride of the budget: the answer is
      // exact and kept, but the overrun is a timeout against the compose
      // breaker — sustained slowness trips it into fail-fast instead of
      // latency collapse.
      c_.compose_overruns.Inc();
      compose_->NoteShardOverrun(source_shard);
      BreakerFail(compose_breaker_);
    } else {
      BreakerOk(compose_breaker_);
    }
    RunBudgetAdaptation();
    return answer;
  } catch (const UnavailableError&) {
    throw;
  } catch (const std::exception& e) {
    BreakerFail(compose_breaker_);
    throw UnavailableError(
        std::string("ShardedRlcService: composed probe failed: ") + e.what());
  }
}

void ShardedRlcService::RunBudgetAdaptation(bool force_round) {
  const BudgetAdaptation adapted = compose_->AdaptTableBudgets(force_round);
  if (adapted.boosts == 0 && adapted.releases == 0) return;
  if (adapted.boosts > 0) c_.budget_boosts.Add(adapted.boosts);
  if (adapted.releases > 0) c_.budget_releases.Add(adapted.releases);
  for (uint32_t s = 0; s < partition_.num_shards(); ++s) {
    shard_budget_gauges_[s]->Set(
        static_cast<int64_t>(compose_->EffectiveTableBudget(s)));
  }
}

bool ShardedRlcService::CrossAnswer(VertexId s, VertexId t, const LabelSeq& seq,
                                    uint32_t ss, uint32_t st) {
  if (RefutedByBoundary(ss, st, seq)) {
    c_.cross_refuted.Inc();
    return false;
  }
  return ComposeProbe(s, t, seq, ss, /*need_intra=*/false);
}

bool ShardedRlcService::Query(VertexId s, VertexId t,
                              const LabelSeq& constraint) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "ShardedRlcService::Query: vertex out of range");
  const SeqEntry& entry = Resolve(constraint);
  c_.queries.Inc();
  const uint32_t ss = partition_.ShardOf(s);
  const uint32_t st = partition_.ShardOf(t);
  if (ss == st) {
    BreakerSlot& slot = shard_breakers_[ss];
    if (BreakerDecide(slot) == CircuitBreaker::Decision::kDeny) {
      // The shard is sick: answer index-free. Boundary refutation must be
      // skipped — without a shard answer, an intra-shard witness may exist.
      c_.breaker_degraded.Inc();
      return ComposeProbe(s, t, constraint, ss, /*need_intra=*/true);
    }
    try {
      FailpointHitFast(failpoints::kServeShardExecute);
      const bool hit = shard_dyn_[ss]->index().QueryInterned(
          partition_.LocalOf(s), partition_.LocalOf(t), entry.shard_mr[ss]);
      BreakerOk(slot);
      if (hit) {
        c_.intra_true.Inc();
        return true;
      }
      c_.intra_miss.Inc();
    } catch (const std::exception&) {
      BreakerFail(slot);
      c_.breaker_degraded.Inc();
      return ComposeProbe(s, t, constraint, ss, /*need_intra=*/true);
    }
  }
  return CrossAnswer(s, t, constraint, ss, st);
}

AnswerBatch ShardedRlcService::Execute(const QueryBatch& batch) {
  return Execute(batch, ExecuteLimits{options_.batch_budget_ns,
                                      options_.probe_budget_ns,
                                      /*shed_as_status=*/false});
}

AnswerBatch ShardedRlcService::Execute(const QueryBatch& batch,
                                       const ExecuteLimits& limits) {
  // Per-stage instrumentation runs at batch/job granularity only (a clock
  // read per probe would dwarf a 30ns refuted probe); disabled metrics
  // cost one relaxed load here.
  const bool metrics_on = obs::Enabled();

  // Admission control, before any work: shed while the kernel-job queue is
  // over the high-water mark (or the batch itself is oversized) instead of
  // queueing into a latency collapse. Nothing has run, so retry-after-
  // backoff is safe.
  const char* shed_reason = nullptr;
  if (options_.max_batch_probes != 0 &&
      batch.num_probes() > options_.max_batch_probes) {
    shed_reason = "batch exceeds max_batch_probes";
  } else if (options_.max_pending_jobs > 0 &&
             internal::KernelQueueDepthGauge().Value() >=
                 options_.max_pending_jobs) {
    shed_reason = "kernel-job queue over the high-water mark";
  }
  if (shed_reason != nullptr) {
    c_.shed.Add(batch.num_probes());
    if (!limits.shed_as_status) {
      throw OverloadedError(std::string("ShardedRlcService::Execute: shed: ") +
                            shed_reason);
    }
    AnswerBatch shed_out;
    shed_out.answers.assign(batch.num_probes(), 0);
    shed_out.statuses.assign(batch.num_probes(), ProbeStatus::kShedded);
    shed_out.num_shedded = batch.num_probes();
    return shed_out;
  }

  // An active batch budget needs the clock even with metrics off.
  const uint64_t t_start =
      metrics_on || limits.batch_budget_ns != 0 ? obs::NowNanos() : 0;
  const Deadline deadline = Deadline::After(limits.batch_budget_ns, t_start);

  AnswerBatch out;
  out.answers.assign(batch.num_probes(), 0);
  out.statuses.assign(batch.num_probes(), ProbeStatus::kOk);
  c_.batches.Inc();

  // Resolve (validate + intern-lookup) each distinct sequence once. The
  // entry pointers stay valid across the loop: references into the node-
  // based map are insert-stable, and the memo flush is done up front here
  // so Resolve cannot trigger it mid-loop.
  const std::vector<LabelSeq>& seqs = batch.sequences();
  RLC_REQUIRE(seqs.size() <= kMaxCachedSequences,
              "ShardedRlcService::Execute: batch has " << seqs.size()
                  << " distinct sequences (limit " << kMaxCachedSequences << ")");
  if (seq_cache_.size() + seqs.size() > kMaxCachedSequences) {
    c_.seq_cache_flushes.Inc();
    c_.seq_cache_evictions.Add(seq_cache_.size());
    seq_cache_.clear();
  }
  std::vector<const SeqEntry*> entries;
  entries.reserve(seqs.size());
  for (const LabelSeq& seq : seqs) entries.push_back(&Resolve(seq));

  // Bucket probe positions by (shard, seq) for same-shard probes and by
  // seq alone for cross-shard ones; submission order is preserved inside
  // each bucket, so execution is deterministic.
  struct Group {
    uint32_t shard_plus_1;  // 0 = cross-shard bucket
    uint32_t seq_id;
    std::vector<uint32_t> probe_idx;
  };
  const std::vector<BatchProbe>& probes = batch.probes();
  const VertexId nv = g_.num_vertices();
  std::unordered_map<uint64_t, uint32_t> group_of;
  std::vector<Group> groups;
  for (uint32_t i = 0; i < probes.size(); ++i) {
    const BatchProbe& p = probes[i];
    RLC_REQUIRE(p.seq_id < seqs.size(),
                "ShardedRlcService::Execute: probe " << i
                    << " references unknown seq_id " << p.seq_id);
    RLC_REQUIRE(p.s < nv && p.t < nv,
                "ShardedRlcService::Execute: probe " << i
                    << " vertex out of range");
    const uint32_t ss = partition_.ShardOf(p.s);
    const uint32_t st = partition_.ShardOf(p.t);
    const uint32_t shard_plus_1 = ss == st ? ss + 1 : 0;
    const uint64_t key = (static_cast<uint64_t>(shard_plus_1) << 32) | p.seq_id;
    const auto [it, inserted] =
        group_of.try_emplace(key, static_cast<uint32_t>(groups.size()));
    if (inserted) groups.push_back({shard_plus_1, p.seq_id, {}});
    groups[it->second].probe_idx.push_back(i);
  }
  c_.queries.Add(probes.size());
  const uint64_t t_resolved = metrics_on ? obs::NowNanos() : 0;
  if (metrics_on) h_.resolve_ns.Record(t_resolved - t_start);

  // Pin one epoch per index for the whole batch: a background reseal may
  // finish mid-execution, and the snapshots keep every job of this batch on
  // one consistent (and alive) index even across the owner's next swap.
  std::vector<std::shared_ptr<const RlcIndex>> shard_snaps;
  shard_snaps.reserve(shard_dyn_.size());
  for (const auto& dyn : shard_dyn_) shard_snaps.push_back(dyn->Snapshot());

  // Phase 1: grouped CSR probes on the shard indexes. The kernel passes of
  // all executable groups fan out across the execution pool (per-job
  // buffers, no shared mutable state); the routing decisions — boundary
  // refutation, stats, composed-probe collection — then run sequentially
  // over the job answers in group submission order, so every thread count
  // produces identical answers and counters.
  const size_t chunk = std::max<size_t>(size_t{1}, options_.exec_probes_per_job);
  std::vector<internal::KernelJob> jobs;
  std::vector<size_t> first_job(groups.size(), SIZE_MAX);
  // Per-shard breaker decision, made once per batch (lazily, only for
  // shards this batch touches). Denied shards get no jobs: their probes
  // degrade straight to index-free composition in the routing pass.
  std::vector<int8_t> shard_decision(shard_dyn_.size(), -1);
  auto decide_shard = [&](uint32_t shard) {
    if (shard_decision[shard] < 0) {
      shard_decision[shard] =
          static_cast<int8_t>(BreakerDecide(shard_breakers_[shard]));
    }
    return static_cast<CircuitBreaker::Decision>(shard_decision[shard]);
  };
  std::vector<uint8_t> group_degraded(groups.size(), 0);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& group = groups[gi];
    if (group.shard_plus_1 == 0) continue;
    const uint32_t shard = group.shard_plus_1 - 1;
    if (decide_shard(shard) == CircuitBreaker::Decision::kDeny) {
      group_degraded[gi] = 1;
      continue;
    }
    const MrId mr = entries[group.seq_id]->shard_mr[shard];
    if (mr == kInvalidMrId) continue;
    first_job[gi] = jobs.size();
    const size_t first_new = jobs.size();
    internal::AppendChunkedJobs(
        *shard_snaps[shard], mr, group.probe_idx.size(), chunk,
        [&](size_t i) {
          const BatchProbe& p = probes[group.probe_idx[i]];
          return VertexPair{partition_.LocalOf(p.s), partition_.LocalOf(p.t)};
        },
        jobs);
    for (size_t j = first_new; j < jobs.size(); ++j) {
      jobs[j].deadline_ns = deadline.at_ns;
      jobs[j].failpoint = failpoints::kServeShardExecute;
    }
  }
  internal::RunKernelJobs(jobs, exec_pool_.get());
  const uint64_t t_shard_done = metrics_on ? obs::NowNanos() : 0;
  if (metrics_on) internal::MergeJobStats(jobs, &h_.shard_kernel_ns);

  // Sequential routing pass over the shard answers. Pending probes carry
  // whether they also need the index-free intra answer (degraded probes:
  // their shard index never reported a miss).
  struct PendingProbe {
    uint32_t idx;
    uint8_t need_intra;
  };
  std::vector<std::vector<PendingProbe>> pending(seqs.size());
  auto route_cross = [&](uint32_t probe_i) {
    const BatchProbe& p = probes[probe_i];
    const uint32_t ss = partition_.ShardOf(p.s);
    if (RefutedByBoundary(ss, partition_.ShardOf(p.t), seqs[p.seq_id])) {
      c_.cross_refuted.Inc();
      ++out.num_refuted;
    } else {
      pending[p.seq_id].push_back({probe_i, 0});
      shard_compose_[ss]->Inc();
    }
  };
  // A probe without a trustworthy shard answer (breaker-open shard, failed
  // job) is answered index-free: boundary refutation is only sound after
  // the shard index reported a miss — without that, the witness may sit
  // entirely inside the shard, so the composed probe also runs the intra
  // product search.
  auto degrade = [&](uint32_t probe_i) {
    const BatchProbe& p = probes[probe_i];
    pending[p.seq_id].push_back({probe_i, 1});
    shard_compose_[partition_.ShardOf(p.s)]->Inc();
    ++out.num_degraded;
  };
  // Breaker evidence, resolved once per shard after the whole batch: any
  // failed job is a failure; otherwise any job that ran is a success
  // (deadline-skipped jobs are no evidence either way).
  std::vector<uint8_t> shard_ran(shard_dyn_.size(), 0);
  std::vector<uint8_t> shard_failed(shard_dyn_.size(), 0);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& group = groups[gi];
    if (group.shard_plus_1 == 0) {
      for (const uint32_t i : group.probe_idx) route_cross(i);
      continue;
    }
    if (group_degraded[gi]) {
      for (const uint32_t i : group.probe_idx) degrade(i);
      continue;
    }
    if (first_job[gi] == SIZE_MAX) {
      // The shard never recorded this MR: every probe is a shard miss
      // (matching ExecuteBatch, such groups do not count as executed).
      c_.intra_miss.Add(group.probe_idx.size());
      for (const uint32_t i : group.probe_idx) route_cross(i);
      continue;
    }
    const uint32_t shard = group.shard_plus_1 - 1;
    ++out.num_groups;
    size_t job = first_job[gi];
    size_t k = 0;
    uint64_t group_true = 0;
    uint64_t group_miss = 0;
    for (const uint32_t i : group.probe_idx) {
      if (k == jobs[job].answers.size()) {
        ++job;
        k = 0;
      }
      const internal::KernelJob& jb = jobs[job];
      if (jb.outcome == internal::KernelJob::Outcome::kRan) {
        shard_ran[shard] = 1;
        if (jb.answers[k]) {
          out.answers[i] = 1;
          ++group_true;
        } else {
          ++group_miss;
          route_cross(i);
        }
      } else if (jb.outcome == internal::KernelJob::Outcome::kSkippedDeadline) {
        out.statuses[i] = ProbeStatus::kDeadlineExceeded;
        ++out.num_deadline_exceeded;
      } else {  // kFailed: injected fault in the shard kernel
        shard_failed[shard] = 1;
        degrade(i);
      }
      ++k;
    }
    c_.intra_true.Add(group_true);
    c_.intra_miss.Add(group_miss);
  }
  for (uint32_t shard = 0; shard < shard_dyn_.size(); ++shard) {
    if (shard_failed[shard]) {
      BreakerFail(shard_breakers_[shard]);
    } else if (shard_ran[shard]) {
      BreakerOk(shard_breakers_[shard]);
    }
  }
  if (out.num_degraded > 0) c_.breaker_degraded.Add(out.num_degraded);
  if (metrics_on) h_.route_ns.Record(obs::NowNanos() - t_shard_done);

  // Phase 2: composition. The pending probes fan out across the execution
  // pool in chunked jobs — the engine's probe path is const on a prepared
  // plan, each job carries its own scratch and answer buffers, and all
  // telemetry merges sequentially after the barrier, so answers and
  // counters are identical for every thread count. The compose breaker is
  // consulted once per batch: open means the pending probes fail fast as
  // kShardUnavailable instead of piling onto an engine that is already
  // drowning.
  size_t pending_total = 0;
  for (const std::vector<PendingProbe>& bucket : pending) {
    pending_total += bucket.size();
  }
  if (pending_total > 0 && BreakerDecide(compose_breaker_) ==
                               CircuitBreaker::Decision::kDeny) {
    for (const std::vector<PendingProbe>& bucket : pending) {
      for (const PendingProbe& pp : bucket) {
        out.statuses[pp.idx] = ProbeStatus::kShardUnavailable;
        ++out.num_unavailable;
      }
    }
    c_.breaker_fail_fast.Add(pending_total);
  } else if (pending_total > 0) {
    const bool timed_probes = metrics_on || limits.probe_budget_ns != 0;
    bool any_ran = false;
    bool any_failed = false;
    uint64_t total_overruns = 0;
    std::vector<uint32_t> pending_seqs;
    for (uint32_t seq_id = 0; seq_id < pending.size(); ++seq_id) {
      if (!pending[seq_id].empty()) pending_seqs.push_back(seq_id);
    }
    // Plans are prepared on the caller thread (the engine's only non-const
    // entry point), in rounds bounded by the engine's plan-cache capacity:
    // PreparePlan flushes the cache when full, which would dangle earlier
    // plan pointers if a round outgrew it.
    const size_t plan_cap =
        std::max<size_t>(size_t{1}, compose_->options().max_cached_plans);
    size_t seq_pos = 0;
    while (seq_pos < pending_seqs.size()) {
      const size_t round =
          std::min(plan_cap, pending_seqs.size() - seq_pos);
      if (compose_->num_cached_plans() + round > plan_cap) {
        const size_t dropped = compose_->InvalidateAll();
        if (dropped > 0) {
          c_.frontier_evictions.Add(static_cast<uint64_t>(dropped));
        }
      }
      std::vector<const CompositionEngine::Plan*> plans(seqs.size(), nullptr);
      uint32_t invalidated_total = 0;
      struct ComposeItem {
        uint32_t probe;
        uint32_t seq_id;
        uint8_t need_intra;
      };
      std::vector<ComposeItem> items;
      for (size_t r = 0; r < round; ++r) {
        const uint32_t seq_id = pending_seqs[seq_pos + r];
        uint32_t invalidated = 0;
        plans[seq_id] = &compose_->PreparePlan(seqs[seq_id], &invalidated);
        invalidated_total += invalidated;
        for (const PendingProbe& pp : pending[seq_id]) {
          items.push_back({pp.idx, seq_id, pp.need_intra});
        }
      }
      seq_pos += round;
      if (invalidated_total > 0) {
        c_.compose_invalidations.Add(invalidated_total);
      }
      c_.compose_probes.Add(items.size());
      out.num_composed += items.size();

      struct ComposeJob {
        size_t first = 0;
        size_t count = 0;
        std::vector<uint8_t> answers;
        std::vector<ProbeStatus> statuses;
        std::vector<uint64_t> probe_ns;
        uint64_t job_ns = 0;
        uint64_t hops = 0;
        uint64_t expanded = 0;
        uint64_t rows_built = 0;
        uint64_t overruns = 0;
        uint64_t frontier_hits = 0;
        uint64_t frontier_misses = 0;
        uint64_t frontier_evictions = 0;
        bool ran = false;
        bool failed = false;
      };
      std::vector<ComposeJob> compose_jobs;
      for (size_t first = 0; first < items.size(); first += chunk) {
        ComposeJob jb;
        jb.first = first;
        jb.count = std::min(chunk, items.size() - first);
        compose_jobs.push_back(std::move(jb));
      }
      auto run_compose_job = [&](ComposeJob& jb,
                                 CompositionEngine::Scratch& scratch) {
        const uint64_t jt0 = metrics_on ? obs::NowNanos() : 0;
        jb.answers.assign(jb.count, 0);
        jb.statuses.assign(jb.count, ProbeStatus::kOk);
        if (timed_probes) jb.probe_ns.assign(jb.count, 0);
        bool job_ok = true;
        try {
          FailpointHitFast(failpoints::kServeComposeExecute);
        } catch (const std::exception&) {
          job_ok = false;  // injected job-level fault: the whole chunk fails
        }
        for (size_t k = 0; k < jb.count; ++k) {
          if (!job_ok) {
            jb.failed = true;
            jb.statuses[k] = ProbeStatus::kShardUnavailable;
            continue;
          }
          if (deadline.active() && deadline.Expired(obs::NowNanos())) {
            jb.statuses[k] = ProbeStatus::kDeadlineExceeded;
            continue;
          }
          const ComposeItem& item = items[jb.first + k];
          const BatchProbe& p = probes[item.probe];
          try {
            // Per-probe deadline = batch deadline ∩ probe budget, with the
            // clock started before the failpoint so injected delays consume
            // budget like real traversal time. The engine enforces it
            // inside its BFS loops (overrun bounded by one check stride).
            const uint64_t t0 = timed_probes ? obs::NowNanos() : 0;
            const Deadline probe_deadline = EarlierOf(
                deadline, Deadline::After(limits.probe_budget_ns, t0));
            FailpointHitFast(failpoints::kServeComposeProbe);
            bool probe_timed_out = false;
            bool ans = item.need_intra != 0 &&
                       compose_->IntraProductReaches(
                           p.s, p.t, seqs[item.seq_id], scratch,
                           probe_deadline, &probe_timed_out);
            if (!ans && !probe_timed_out) {
              const ComposeResult r = compose_->ComposedQuery(
                  p.s, p.t, *plans[item.seq_id], scratch, probe_deadline);
              ans = r.reachable;
              probe_timed_out = r.timed_out;
              jb.hops += r.skeleton_hops;
              jb.expanded += r.expanded;
              jb.rows_built += r.table_rows_built;
              if (r.frontier_hit) ++jb.frontier_hits;
              if (r.frontier_miss) ++jb.frontier_misses;
              jb.frontier_evictions += r.frontier_evictions;
            }
            const uint64_t elapsed = timed_probes ? obs::NowNanos() - t0 : 0;
            if (probe_timed_out) {
              // Aborted mid-traversal: partial telemetry, no answer. The
              // overrun is attributed (heat + counter) only when the probe
              // budget — not just the batch deadline — was binding.
              jb.statuses[k] = ProbeStatus::kDeadlineExceeded;
              if (limits.probe_budget_ns != 0 &&
                  elapsed >= limits.probe_budget_ns) {
                ++jb.overruns;
                compose_->NoteShardOverrun(partition_.ShardOf(p.s));
              }
              continue;
            }
            if (timed_probes) jb.probe_ns[k] = elapsed;
            jb.answers[k] = ans ? 1 : 0;
            jb.ran = true;
            if (limits.probe_budget_ns != 0 &&
                elapsed > limits.probe_budget_ns) {
              ++jb.overruns;
              compose_->NoteShardOverrun(partition_.ShardOf(p.s));
            }
          } catch (const std::exception&) {
            jb.failed = true;
            jb.statuses[k] = ProbeStatus::kShardUnavailable;
          }
        }
        if (metrics_on) jb.job_ns = obs::NowNanos() - jt0;
      };
      if (exec_pool_ != nullptr && compose_jobs.size() > 1) {
        std::atomic<size_t> cursor{0};
        exec_pool_->Run([&](uint32_t) {
          CompositionEngine::Scratch scratch;
          for (size_t ji; (ji = cursor.fetch_add(1)) < compose_jobs.size();) {
            run_compose_job(compose_jobs[ji], scratch);
          }
        });
      } else {
        for (ComposeJob& jb : compose_jobs) {
          run_compose_job(jb, compose_scratch_);
        }
      }

      // Merge, sequentially and in item order.
      uint64_t hops = 0, expanded = 0, rows_built = 0;
      uint64_t fr_hits = 0, fr_misses = 0, fr_evictions = 0;
      for (const ComposeJob& jb : compose_jobs) {
        for (size_t k = 0; k < jb.count; ++k) {
          const uint32_t i = items[jb.first + k].probe;
          if (jb.statuses[k] == ProbeStatus::kOk) {
            out.answers[i] = jb.answers[k];
            if (metrics_on) h_.compose_probe_ns.Record(jb.probe_ns[k]);
          } else if (jb.statuses[k] == ProbeStatus::kDeadlineExceeded) {
            out.statuses[i] = ProbeStatus::kDeadlineExceeded;
            ++out.num_deadline_exceeded;
          } else {
            out.statuses[i] = ProbeStatus::kShardUnavailable;
            ++out.num_unavailable;
          }
        }
        hops += jb.hops;
        expanded += jb.expanded;
        rows_built += jb.rows_built;
        fr_hits += jb.frontier_hits;
        fr_misses += jb.frontier_misses;
        fr_evictions += jb.frontier_evictions;
        total_overruns += jb.overruns;
        any_ran = any_ran || jb.ran;
        any_failed = any_failed || jb.failed;
        if (metrics_on) h_.compose_job_ns.Record(jb.job_ns);
      }
      c_.compose_skeleton_hops.Add(hops);
      c_.compose_expanded.Add(expanded);
      if (rows_built > 0) c_.compose_table_builds.Add(rows_built);
      if (fr_hits > 0) c_.frontier_hits.Add(fr_hits);
      if (fr_misses > 0) c_.frontier_misses.Add(fr_misses);
      if (fr_evictions > 0) c_.frontier_evictions.Add(fr_evictions);
      out.num_frontier_hits += fr_hits;
      out.num_frontier_misses += fr_misses;
    }
    if (total_overruns > 0) c_.compose_overruns.Add(total_overruns);
    // Breaker evidence, once per batch: any failed chunk or budget overrun
    // is a failure; otherwise any composed probe that ran is a success.
    if (any_failed || total_overruns > 0) {
      BreakerFail(compose_breaker_);
    } else if (any_ran) {
      BreakerOk(compose_breaker_);
    }
  }
  if (out.num_deadline_exceeded > 0) {
    c_.deadline_exceeded.Add(out.num_deadline_exceeded);
  }
  c_.batch_groups.Add(out.num_groups);
  // Owner-thread adapt step between batches: drain this batch's heat and
  // re-budget hot/cold shards (tables refresh lazily on the next probe).
  RunBudgetAdaptation();
  if (metrics_on) h_.execute_ns.Record(obs::NowNanos() - t_start);
  return out;
}

bool ShardedRlcService::EdgePresent(VertexId src, Label label,
                                    VertexId dst) const {
  if (applied_set_.find({src, label, dst}) != applied_set_.end()) return true;
  return g_.HasEdge(src, dst, label) &&
         deleted_base_.find({src, label, dst}) == deleted_base_.end();
}

size_t ShardedRlcService::ApplyUpdates(std::span<const EdgeUpdate> updates) {
  obs::ScopedSpan span(h_.apply_updates_ns, "serve.apply_updates");
  ValidateUpdates(updates);
  if (updates.empty()) return 0;
  if (wal_.is_open()) {
    // Append-before-apply: once Append returns the batch is fsynced, so an
    // acknowledged return from this method survives any crash. An append
    // failure leaves the in-memory state untouched.
    wal_.Append(last_lsn_ + 1, updates);
    ++last_lsn_;
  }
  const size_t applied = ApplyUpdatesInternal(updates);
  if (wal_.is_open() && options_.durability.checkpoint_wal_bytes > 0 &&
      wal_.bytes_appended() >= options_.durability.checkpoint_wal_bytes) {
    Checkpoint();
  }
  return applied;
}

void ShardedRlcService::ValidateUpdates(
    std::span<const EdgeUpdate> updates) const {
  // Validate the whole batch up front: a mid-batch throw after edges were
  // already applied would skip the cache epilogue below and leave the
  // service answering stale — the documented exception must be catchable
  // without corrupting the instance.
  for (const EdgeUpdate& e : updates) {
    RLC_REQUIRE(e.src < g_.num_vertices() && e.dst < g_.num_vertices(),
                "ShardedRlcService::ApplyUpdates: vertex out of range");
    RLC_REQUIRE(e.label < g_.num_labels(),
                "ShardedRlcService::ApplyUpdates: label " << e.label
                    << " outside the base graph's alphabet");
  }
}

size_t ShardedRlcService::ApplyUpdatesInternal(
    std::span<const EdgeUpdate> updates) {
  size_t applied = 0;
  for (const EdgeUpdate& e : updates) {
    const bool is_insert = e.op == EdgeOp::kInsert;
    if (is_insert == EdgePresent(e.src, e.label, e.dst)) {
      c_.updates_duplicate.Inc();
      continue;
    }
    const uint32_t ss = partition_.ShardOf(e.src);
    const uint32_t st = partition_.ShardOf(e.dst);
    if (is_insert) {
      if (ss == st) {
        shard_dyn_[ss]->InsertEdge(partition_.LocalOf(e.src), e.label,
                                   partition_.LocalOf(e.dst));
        if (compose_ != nullptr) compose_->OnIntraMutation(ss);
      } else {
        partition_.AddCrossEdge(e.src, e.label, e.dst);
        if (compose_ != nullptr) compose_->OnCrossMutation(ss, st);
        c_.updates_cross.Inc();
      }
      if (!deleted_base_.erase({e.src, e.label, e.dst})) {
        // A genuinely new edge (not a restored base edge) joins the
        // overlay bookkeeping.
        applied_set_.insert({e.src, e.label, e.dst});
        applied_inserts_.push_back(e);
      }
    } else {
      if (ss == st) {
        shard_dyn_[ss]->DeleteEdge(partition_.LocalOf(e.src), e.label,
                                   partition_.LocalOf(e.dst));
        if (compose_ != nullptr) compose_->OnIntraMutation(ss);
      } else {
        partition_.RemoveCrossEdge(e.src, e.label, e.dst);
        if (compose_ != nullptr) compose_->OnCrossMutation(ss, st);
        c_.updates_cross.Inc();
      }
      if (applied_set_.erase({e.src, e.label, e.dst})) {
        // Deleting an earlier overlay insert: drop it from the rebuild
        // list; a base edge is shadowed instead.
        applied_inserts_.erase(std::find_if(
            applied_inserts_.begin(), applied_inserts_.end(),
            [&](const EdgeUpdate& a) {
              return a.src == e.src && a.label == e.label && a.dst == e.dst;
            }));
      } else {
        deleted_base_.insert({e.src, e.label, e.dst});
      }
      c_.updates_deleted.Inc();
    }
    ++applied;
    c_.updates_applied.Inc();
  }
  if (applied > 0) {
    // Memoized SeqEntries may hold kInvalidMrId for MRs the updates just
    // created; re-resolve lazily.
    if (!seq_cache_.empty()) {
      c_.seq_cache_flushes.Inc();
      c_.seq_cache_evictions.Add(seq_cache_.size());
      seq_cache_.clear();
    }
  }
  return applied;
}

void ShardedRlcService::ReviveShard(uint32_t shard) {
  RLC_REQUIRE(shard < shard_dyn_.size(),
              "ShardedRlcService::ReviveShard: shard " << shard
                  << " out of range");
  const DiGraph& shard_graph = partition_.shard(shard).graph;
  std::unique_ptr<DynamicRlcIndex> fresh;

  // Durable path first: re-adopt the shard snapshot from the current
  // generation and replay the WAL tail — the same machinery recovery uses,
  // scoped to one shard. Insert/DeleteEdge are exact no-ops on
  // already-applied updates, so the LSN-gated replay is idempotent even
  // when a record straddles the snapshot.
  if (wal_.is_open() && generation_ > 0) {
    try {
      const std::string path =
          GenDir(generation_) + "/shard-" + std::to_string(shard) + ".snap";
      LoadedSnapshot snap = LoadSnapshotFile(path);
      if (!snap.index) {
        throw std::runtime_error(path + " has no embedded index");
      }
      auto dyn = std::make_unique<DynamicRlcIndex>(
          shard_graph, std::move(*snap.index), options_.reseal);
      dyn->RestoreOverlay(snap.inserted, snap.removed);
      const std::string& dir = options_.durability.dir;
      for (const uint64_t gen : ListGenerationFiles(dir, "wal-", ".log")) {
        if (gen < generation_) continue;
        const WalReadResult res = ReadWalFile(WalPath(dir, gen));
        for (const WalRecord& record : res.records) {
          if (record.lsn <= snap.applied_lsn) continue;
          if (record.lsn > last_lsn_) break;  // beyond the applied state
          for (const EdgeUpdate& e : record.updates) {
            if (partition_.ShardOf(e.src) != shard ||
                partition_.ShardOf(e.dst) != shard) {
              continue;
            }
            if (e.op == EdgeOp::kInsert) {
              dyn->InsertEdge(partition_.LocalOf(e.src), e.label,
                              partition_.LocalOf(e.dst));
            } else {
              dyn->DeleteEdge(partition_.LocalOf(e.src), e.label,
                              partition_.LocalOf(e.dst));
            }
          }
        }
      }
      fresh = std::move(dyn);
    } catch (const std::exception&) {
      fresh.reset();  // unreadable durable state: fall back to a rebuild
    }
  }

  // Rebuild path: fresh index over the base shard graph, then the net
  // overlay (applied_inserts_ / deleted_base_ describe the mutated graph
  // relative to base) filtered to intra-shard edges.
  if (fresh == nullptr) {
    IndexerOptions build_opts = options_.indexer;
    build_opts.num_threads = 1;
    build_opts.seal = true;
    RlcIndexBuilder builder(shard_graph, build_opts);
    fresh = std::make_unique<DynamicRlcIndex>(shard_graph, builder.Build(),
                                              options_.reseal);
    for (const EdgeUpdate& e : applied_inserts_) {
      if (partition_.ShardOf(e.src) == shard &&
          partition_.ShardOf(e.dst) == shard) {
        fresh->InsertEdge(partition_.LocalOf(e.src), e.label,
                          partition_.LocalOf(e.dst));
      }
    }
    for (const auto& [src, label, dst] : deleted_base_) {
      if (partition_.ShardOf(src) == shard &&
          partition_.ShardOf(dst) == shard) {
        fresh->DeleteEdge(partition_.LocalOf(src), label,
                          partition_.LocalOf(dst));
      }
    }
  }

  // The swap itself needs no composition-engine refresh: the engine reads
  // the shard's overlay through shard_dyn_ at probe time, and the fresh
  // index's overlay describes the same mutated graph.
  shard_dyn_[shard] = std::move(fresh);
  // Memoized SeqEntries hold MrIds minted by the replaced shard index.
  if (!seq_cache_.empty()) {
    c_.seq_cache_flushes.Inc();
    c_.seq_cache_evictions.Add(seq_cache_.size());
    seq_cache_.clear();
  }
  shard_breakers_[shard].breaker.Reset();
  shard_breakers_[shard].state_gauge->Set(0);
  c_.shard_revives.Inc();
}

void ShardedRlcService::FinishReseals() {
  for (const auto& dyn : shard_dyn_) dyn->FinishReseal();
}

uint64_t ShardedRlcService::MemoryBytes() const {
  uint64_t bytes = partition_.MemoryBytes();
  for (const auto& dyn : shard_dyn_) bytes += dyn->MemoryBytes();
  if (compose_ != nullptr) bytes += compose_->MemoryBytes();
  return bytes;
}

}  // namespace rlc
