#include "rlc/serve/vertex_order.h"

#include <algorithm>
#include <queue>

#include "rlc/util/common.h"

namespace rlc {

namespace {

uint64_t Mix(uint64_t x) {
  // splitmix64 finalizer — the tie-break hash.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::vector<VertexId> OrderByDegree(const DiGraph& g, bool descending,
                                    uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const uint64_t da = g.OutDegree(a) + g.InDegree(a);
    const uint64_t db = g.OutDegree(b) + g.InDegree(b);
    if (da != db) return descending ? da > db : da < db;
    const uint64_t ha = Mix(a ^ seed);
    const uint64_t hb = Mix(b ^ seed);
    if (ha != hb) return ha < hb;
    return a < b;
  });
  return order;
}

// Greedy greatest-constraint-first: repeatedly append the unplaced vertex
// with the most already-placed neighbors (count of adjacency slots whose
// other endpoint is placed; parallel edges count multiply, which only
// sharpens the pull toward dense neighborhoods). Ties break by total
// degree, then seeded hash, then id. A fresh component (all counts zero)
// starts from its highest-degree vertex. Lazy max-heap: stale entries are
// skipped on pop, so the whole pass is O((n + m) log n).
std::vector<VertexId> OrderGreatestConstraintFirst(const DiGraph& g,
                                                   uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> placed_neighbors(n, 0);
  std::vector<uint8_t> placed(n, 0);

  struct Entry {
    uint32_t count;
    uint64_t degree;
    uint64_t hash;
    VertexId v;
    bool operator<(const Entry& o) const {
      if (count != o.count) return count < o.count;
      if (degree != o.degree) return degree < o.degree;
      if (hash != o.hash) return hash > o.hash;  // smaller hash wins
      return v > o.v;                            // smaller id wins
    }
  };
  std::priority_queue<Entry> heap;
  auto push = [&](VertexId v) {
    heap.push(Entry{placed_neighbors[v], g.OutDegree(v) + g.InDegree(v),
                    Mix(v ^ seed), v});
  };
  for (VertexId v = 0; v < n; ++v) push(v);

  std::vector<VertexId> order;
  order.reserve(n);
  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    if (placed[top.v] || top.count != placed_neighbors[top.v]) continue;
    placed[top.v] = 1;
    order.push_back(top.v);
    for (const LabeledNeighbor& nb : g.OutEdges(top.v)) {
      if (!placed[nb.v]) {
        ++placed_neighbors[nb.v];
        push(nb.v);
      }
    }
    for (const LabeledNeighbor& nb : g.InEdges(top.v)) {
      if (!placed[nb.v]) {
        ++placed_neighbors[nb.v];
        push(nb.v);
      }
    }
  }
  return order;
}

}  // namespace

std::vector<VertexId> ComputeVertexOrder(const DiGraph& g,
                                         OrderHeuristic heuristic,
                                         uint64_t seed) {
  switch (heuristic) {
    case OrderHeuristic::kDegree:
      return OrderByDegree(g, /*descending=*/true, seed);
    case OrderHeuristic::kReverseDegree:
      return OrderByDegree(g, /*descending=*/false, seed);
    case OrderHeuristic::kGreatestConstraintFirst:
      return OrderGreatestConstraintFirst(g, seed);
  }
  RLC_REQUIRE(false, "ComputeVertexOrder: unknown heuristic");
  return {};
}

std::vector<VertexId> InvertOrder(const std::vector<VertexId>& order) {
  std::vector<VertexId> rank_of(order.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    rank_of[order[rank]] = static_cast<VertexId>(rank);
  }
  return rank_of;
}

}  // namespace rlc
