#include "rlc/serve/partitioner.h"

#include <algorithm>
#include <utility>

#include "rlc/util/common.h"

namespace rlc {

namespace {

/// splitmix64 finalizer over (vertex, seed): stateless, platform-portable,
/// and well mixed so hash sharding stays balanced on dense id ranges.
uint32_t HashShard(VertexId v, uint64_t seed, uint32_t num_shards) {
  uint64_t z = (static_cast<uint64_t>(v) + 0x9E3779B97F4A7C15ULL) ^ seed;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % num_shards);
}

}  // namespace

GraphPartition GraphPartition::Build(const DiGraph& g,
                                     const PartitionerOptions& options) {
  RLC_REQUIRE(options.num_shards >= 1 && options.num_shards <= kMaxShards,
              "GraphPartition: num_shards " << options.num_shards
                  << " out of range [1," << kMaxShards << "]");
  GraphPartition p;
  p.options_ = options;

  const VertexId n = g.num_vertices();
  const uint32_t num_shards = options.num_shards;
  p.shard_of_.resize(n);
  p.local_of_.resize(n);
  p.is_boundary_.assign(n, 0);

  // Vertex assignment + dense local ids (ascending global order per shard).
  // kRangeOrdered ranges over the heuristic rank instead of the raw id, so
  // vertices the ordering places together share a shard.
  std::vector<VertexId> rank_of;
  if (options.policy == PartitionPolicy::kRangeOrdered) {
    rank_of = InvertOrder(ComputeVertexOrder(g, options.ordering,
                                             options.order_seed));
  }
  std::vector<std::vector<VertexId>> global_of(num_shards);
  const VertexId block = n == 0 ? 1 : (n + num_shards - 1) / num_shards;
  for (VertexId v = 0; v < n; ++v) {
    uint32_t s = 0;
    switch (options.policy) {
      case PartitionPolicy::kHash:
        s = HashShard(v, options.hash_seed, num_shards);
        break;
      case PartitionPolicy::kRange:
        s = v / block;
        break;
      case PartitionPolicy::kRangeOrdered:
        s = rank_of[v] / block;
        break;
    }
    p.shard_of_[v] = s;
    p.local_of_[v] = static_cast<VertexId>(global_of[s].size());
    global_of[s].push_back(v);
  }

  // Edge split: intra edges feed the shard subgraphs, cross edges feed the
  // boundary summary.
  std::vector<std::vector<Edge>> shard_edges(num_shards);
  std::vector<LabelMask> out_mask(num_shards);
  std::vector<LabelMask> in_mask(num_shards);
  std::vector<uint8_t> quotient_adj(static_cast<size_t>(num_shards) * num_shards, 0);
  p.cross_out_.assign(n, {});
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t sv = p.shard_of_[v];
    for (const LabeledNeighbor& nb : g.OutEdges(v)) {
      const uint32_t sw = p.shard_of_[nb.v];
      if (sv == sw) {
        shard_edges[sv].push_back({p.local_of_[v], p.local_of_[nb.v], nb.label});
      } else {
        p.cross_edges_.push_back({v, nb.v, nb.label});
        p.cross_out_[v].push_back(nb);
        p.is_boundary_[v] = 1;
        p.is_boundary_[nb.v] = 1;
        out_mask[sv].Add(nb.label);
        in_mask[sw].Add(nb.label);
        quotient_adj[static_cast<size_t>(sv) * num_shards + sw] = 1;
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) p.num_boundary_ += p.is_boundary_[v];

  // Materialize the shards. The subgraphs keep parallel edges exactly as
  // the parent graph holds them (the parent already deduplicated if asked
  // to), so each shard is precisely the induced intra-shard multigraph.
  p.shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    info.graph = DiGraph(static_cast<VertexId>(global_of[s].size()),
                         std::move(shard_edges[s]), g.num_labels(),
                         /*dedup_parallel=*/false);
    info.global_of = std::move(global_of[s]);
    for (VertexId local = 0; local < info.graph.num_vertices(); ++local) {
      if (p.is_boundary_[info.global_of[local]]) info.boundary.push_back(local);
    }
    info.out_cross_labels = out_mask[s];
    info.in_cross_labels = in_mask[s];
    p.shards_.push_back(std::move(info));
  }

  CloseQuotient(quotient_adj, num_shards, p.quotient_closure_);
  return p;
}

void GraphPartition::CloseQuotient(const std::vector<uint8_t>& adj,
                                   uint32_t ns, std::vector<uint8_t>& closure) {
  // Quotient closure: BFS from every shard over the cross-arc adjacency.
  // closure[a][b] records "reachable via >= 1 cross edge", so closure[a][a]
  // is true only when a genuine quotient cycle exists.
  closure.assign(static_cast<size_t>(ns) * ns, 0);
  std::vector<uint32_t> queue;
  for (uint32_t a = 0; a < ns; ++a) {
    uint8_t* reach = &closure[static_cast<size_t>(a) * ns];
    queue.clear();
    // Seed with a's direct successors; expansion then follows closure rows.
    for (uint32_t b = 0; b < ns; ++b) {
      if (adj[static_cast<size_t>(a) * ns + b] && !reach[b]) {
        reach[b] = 1;
        queue.push_back(b);
      }
    }
    for (size_t head = 0; head < queue.size(); ++head) {
      const uint32_t mid = queue[head];
      for (uint32_t b = 0; b < ns; ++b) {
        if (adj[static_cast<size_t>(mid) * ns + b] && !reach[b]) {
          reach[b] = 1;
          queue.push_back(b);
        }
      }
    }
  }
}

void GraphPartition::AddCrossEdge(VertexId global_src, Label label,
                                  VertexId global_dst) {
  const uint32_t a = shard_of_[global_src];
  const uint32_t b = shard_of_[global_dst];
  RLC_REQUIRE(a != b,
              "GraphPartition::AddCrossEdge: endpoints share shard " << a);
  cross_edges_.push_back({global_src, global_dst, label});
  cross_out_[global_src].push_back({global_dst, label});
  const auto flag_boundary = [&](VertexId global) {
    if (is_boundary_[global]) return;
    is_boundary_[global] = 1;
    ++num_boundary_;
    ShardInfo& shard = shards_[shard_of_[global]];
    const VertexId local = local_of_[global];
    shard.boundary.insert(
        std::lower_bound(shard.boundary.begin(), shard.boundary.end(), local),
        local);
  };
  flag_boundary(global_src);
  flag_boundary(global_dst);
  shards_[a].out_cross_labels.Add(label);
  shards_[b].in_cross_labels.Add(label);

  // Closure refresh for the new quotient arc a -> b. One composition pass
  // is exact: a walk using the arc splits at its first use into an
  // old-closure prefix x ⇝ a and a suffix from b; any further uses of the
  // arc in the suffix only revisit b, so the suffix's reachable set is b's
  // old row plus b itself.
  const uint32_t ns = num_shards();
  std::vector<uint8_t> to_a(ns), from_b(ns);
  for (uint32_t x = 0; x < ns; ++x) {
    to_a[x] = (x == a) || QuotientReaches(x, a);
    from_b[x] = (x == b) || QuotientReaches(b, x);
  }
  for (uint32_t x = 0; x < ns; ++x) {
    if (!to_a[x]) continue;
    uint8_t* row = &quotient_closure_[static_cast<size_t>(x) * ns];
    for (uint32_t y = 0; y < ns; ++y) row[y] |= from_b[y];
  }
}

void GraphPartition::RemoveCrossEdge(VertexId global_src, Label label,
                                     VertexId global_dst) {
  RLC_REQUIRE(shard_of_[global_src] != shard_of_[global_dst],
              "GraphPartition::RemoveCrossEdge: endpoints share shard "
                  << shard_of_[global_src]);
  const auto tail = std::remove_if(
      cross_edges_.begin(), cross_edges_.end(), [&](const Edge& e) {
        return e.src == global_src && e.dst == global_dst && e.label == label;
      });
  RLC_REQUIRE(tail != cross_edges_.end(),
              "GraphPartition::RemoveCrossEdge: no registered cross edge "
                  << global_src << " -" << label << "-> " << global_dst);
  cross_edges_.erase(tail, cross_edges_.end());
  RebuildSummary();
}

void GraphPartition::RebuildSummary() {
  const uint32_t ns = num_shards();
  std::fill(is_boundary_.begin(), is_boundary_.end(), uint8_t{0});
  num_boundary_ = 0;
  for (ShardInfo& shard : shards_) {
    shard.boundary.clear();
    shard.out_cross_labels = LabelMask();
    shard.in_cross_labels = LabelMask();
  }
  std::vector<uint8_t> adj(static_cast<size_t>(ns) * ns, 0);
  cross_out_.assign(is_boundary_.size(), {});
  for (const Edge& e : cross_edges_) {
    const uint32_t a = shard_of_[e.src];
    const uint32_t b = shard_of_[e.dst];
    is_boundary_[e.src] = 1;
    is_boundary_[e.dst] = 1;
    cross_out_[e.src].push_back({e.dst, e.label});
    shards_[a].out_cross_labels.Add(e.label);
    shards_[b].in_cross_labels.Add(e.label);
    adj[static_cast<size_t>(a) * ns + b] = 1;
  }
  // Boundary lists rebuilt in ascending global id, which is ascending local
  // id per shard — the same order Build produces.
  for (VertexId v = 0; v < is_boundary_.size(); ++v) {
    if (!is_boundary_[v]) continue;
    ++num_boundary_;
    shards_[shard_of_[v]].boundary.push_back(local_of_[v]);
  }
  CloseQuotient(adj, ns, quotient_closure_);
}

uint64_t GraphPartition::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const ShardInfo& s : shards_) {
    bytes += s.graph.MemoryBytes();
    bytes += s.global_of.capacity() * sizeof(VertexId);
    bytes += s.boundary.capacity() * sizeof(VertexId);
  }
  bytes += shard_of_.capacity() * sizeof(uint32_t);
  bytes += local_of_.capacity() * sizeof(VertexId);
  bytes += cross_edges_.capacity() * sizeof(Edge);
  for (const auto& adj : cross_out_) {
    bytes += adj.capacity() * sizeof(LabeledNeighbor);
  }
  bytes += cross_out_.capacity() * sizeof(std::vector<LabeledNeighbor>);
  bytes += is_boundary_.capacity();
  bytes += quotient_closure_.capacity();
  return bytes;
}

}  // namespace rlc
