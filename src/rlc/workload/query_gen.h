// Workload generation, following the paper's query-generation protocol
// (§VI-c): uniformly select a source, a target and a primitive label
// constraint L+, classify the query with a bidirectional BFS oracle, and
// collect it into the true- or false-query set until both sets hold the
// requested number of queries (1000 + 1000 in the paper).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/graph/digraph.h"
#include "rlc/util/rng.h"

namespace rlc {

/// One RLC reachability query with its ground-truth answer.
struct RlcQuery {
  VertexId s = 0;
  VertexId t = 0;
  LabelSeq constraint;    ///< primitive L of the constraint L+
  bool expected = false;  ///< oracle answer
};

/// A generated workload: `expected` is true for every query in
/// `true_queries` and false for every query in `false_queries`.
struct Workload {
  std::vector<RlcQuery> true_queries;
  std::vector<RlcQuery> false_queries;
};

/// Workload-generation parameters.
struct WorkloadOptions {
  uint32_t constraint_length = 2;  ///< exact |L| of every query (the paper
                                   ///< fixes it per experiment)
  uint32_t count = 1000;           ///< queries per set
  uint64_t seed = 7;
  /// Generation draws until both sets are full; on graphs where one class is
  /// rare this caps the effort. When the cap is hit the rare set is returned
  /// short — callers should check sizes.
  uint64_t max_attempts = 50'000'000;
  /// When uniform sampling cannot fill the true-query set within the attempt
  /// budget (tiny or sparse graphs make satisfying pairs vanishingly rare),
  /// fill the remainder with queries derived from random walks whose label
  /// word is a power of a primitive sequence of the requested length. These
  /// are guaranteed-true and keep benchmark rows populated; the paper's
  /// protocol (pure uniform sampling) is preserved whenever it succeeds.
  bool fill_true_with_walks = false;
};

/// Generates a workload for `g`. Constraints are uniform primitive label
/// sequences of exactly `constraint_length` labels drawn from g's alphabet;
/// endpoints are uniform vertices. Deterministic in `seed`.
/// \throws std::invalid_argument when g has no vertices/labels or when
///         constraint_length exceeds kMaxK.
Workload GenerateWorkload(const DiGraph& g, const WorkloadOptions& options);

/// Draws one uniform *primitive* label sequence of exactly `length` labels
/// over `num_labels` labels (rejection sampling; primitive sequences
/// dominate, so this terminates quickly). Requires num_labels >= 2 when
/// length >= 2 (a 1-letter alphabet has no primitive length-2 sequence).
LabelSeq RandomPrimitiveSeq(uint32_t length, Label num_labels, Rng& rng);

/// \name Workload text I/O
/// Line format: `s t l1,l2,... 0|1`. Blank lines and `#` comments are
/// skipped. Readers validate every field — non-numeric endpoints or label
/// tokens, an empty constraint, an expected flag outside {0,1} or trailing
/// garbage all throw std::runtime_error whose message pins the offending
/// line as `<source>:<line>: ...` (the file path when read via
/// LoadWorkload), so a malformed query log is rejected rather than half
/// loaded.
///@{
void WriteWorkload(const Workload& w, std::ostream& out);
Workload ReadWorkload(std::istream& in, const std::string& source = "workload");
void SaveWorkload(const Workload& w, const std::string& path);
Workload LoadWorkload(const std::string& path);
///@}

}  // namespace rlc
