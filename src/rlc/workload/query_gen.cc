#include "rlc/workload/query_gen.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "rlc/baselines/online_search.h"
#include "rlc/util/common.h"

namespace rlc {

LabelSeq RandomPrimitiveSeq(uint32_t length, Label num_labels, Rng& rng) {
  RLC_REQUIRE(length >= 1 && length <= kMaxK,
              "RandomPrimitiveSeq: length must be in [1," << kMaxK << "]");
  RLC_REQUIRE(num_labels >= 1, "RandomPrimitiveSeq: empty alphabet");
  RLC_REQUIRE(length == 1 || num_labels >= 2,
              "RandomPrimitiveSeq: no primitive sequence of length >= 2 exists"
              " over a single label");
  while (true) {
    LabelSeq seq;
    for (uint32_t i = 0; i < length; ++i) {
      seq.PushBack(static_cast<Label>(rng.Below(num_labels)));
    }
    if (IsPrimitive(seq.labels())) return seq;
  }
}

Workload GenerateWorkload(const DiGraph& g, const WorkloadOptions& options) {
  RLC_REQUIRE(g.num_vertices() > 0 && g.num_labels() > 0,
              "GenerateWorkload: graph must have vertices and labels");
  Rng rng(options.seed);
  OnlineSearcher oracle(g);

  Workload w;
  w.true_queries.reserve(options.count);
  w.false_queries.reserve(options.count);

  for (uint64_t attempt = 0;
       attempt < options.max_attempts &&
       (w.true_queries.size() < options.count ||
        w.false_queries.size() < options.count);
       ++attempt) {
    RlcQuery q;
    q.s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    q.t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    q.constraint = RandomPrimitiveSeq(options.constraint_length, g.num_labels(), rng);
    q.expected = oracle.QueryBiBfsOnce(
        q.s, q.t, PathConstraint::RlcPlus(q.constraint));
    auto& set = q.expected ? w.true_queries : w.false_queries;
    if (set.size() < options.count) set.push_back(q);
  }

  if (options.fill_true_with_walks && w.true_queries.size() < options.count) {
    // Walk-derived fallback: read the label word of a random walk; when the
    // word is mr^z for a primitive mr of the requested length, the walk
    // itself witnesses (start, end, mr+).
    const uint64_t budget = options.max_attempts;
    for (uint64_t attempt = 0;
         attempt < budget && w.true_queries.size() < options.count; ++attempt) {
      RlcQuery q;
      q.s = static_cast<VertexId>(rng.Below(g.num_vertices()));
      VertexId v = q.s;
      std::vector<Label> word;
      const uint32_t len =
          options.constraint_length * (1 + static_cast<uint32_t>(rng.Below(3)));
      for (uint32_t i = 0; i < len; ++i) {
        const auto out = g.OutEdges(v);
        if (out.empty()) break;
        const LabeledNeighbor& nb = out[rng.Below(out.size())];
        word.push_back(nb.label);
        v = nb.v;
      }
      if (word.empty()) continue;
      const auto mr = MinimumRepeat(word);
      if (mr.size() != options.constraint_length) continue;
      q.t = v;
      q.constraint = LabelSeq(std::span<const Label>(mr));
      q.expected = true;
      w.true_queries.push_back(q);
    }
  }
  return w;
}

void WriteWorkload(const Workload& w, std::ostream& out) {
  auto write_set = [&](const std::vector<RlcQuery>& queries) {
    for (const RlcQuery& q : queries) {
      out << q.s << ' ' << q.t << ' ';
      for (uint32_t i = 0; i < q.constraint.size(); ++i) {
        if (i > 0) out << ',';
        out << q.constraint[i];
      }
      out << ' ' << (q.expected ? 1 : 0) << "\n";
    }
  };
  write_set(w.true_queries);
  write_set(w.false_queries);
}

Workload ReadWorkload(std::istream& in, const std::string& source) {
  Workload w;
  std::string line;
  uint64_t line_no = 0;
  auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error(source + ":" + std::to_string(line_no) + ": " +
                             what);
  };
  // Strict u32 parse: the stream operators accept leading '-' (wrapping)
  // and stoul accepts trailing garbage; both would load a corrupt log as
  // plausible-looking probes instead of rejecting it.
  auto parse_u32 = [&](const std::string& tok, const char* field) -> uint32_t {
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string::npos) {
      fail(std::string(field) + ": expected an unsigned integer, got '" + tok +
           "'");
    }
    errno = 0;
    const unsigned long v = std::strtoul(tok.c_str(), nullptr, 10);
    if (errno == ERANGE || v > std::numeric_limits<uint32_t>::max()) {
      fail(std::string(field) + ": value '" + tok + "' out of range");
    }
    return static_cast<uint32_t>(v);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string s_tok, t_tok, labels, expected_tok, extra;
    if (!(ls >> s_tok >> t_tok >> labels >> expected_tok)) {
      fail("expected 's t l1,l2,... 0|1'");
    }
    if (ls >> extra) fail("trailing garbage '" + extra + "'");
    RlcQuery q;
    q.s = parse_u32(s_tok, "source vertex");
    q.t = parse_u32(t_tok, "target vertex");
    std::istringstream lab(labels);
    std::string tok;
    while (std::getline(lab, tok, ',')) {
      q.constraint.PushBack(static_cast<Label>(parse_u32(tok, "label")));
    }
    if (q.constraint.empty()) fail("empty constraint");
    if (expected_tok != "0" && expected_tok != "1") {
      fail("expected flag must be 0 or 1, got '" + expected_tok + "'");
    }
    q.expected = expected_tok == "1";
    (q.expected ? w.true_queries : w.false_queries).push_back(q);
  }
  return w;
}

void SaveWorkload(const Workload& w, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  WriteWorkload(w, out);
}

Workload LoadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload file: " + path);
  return ReadWorkload(in, path);
}

}  // namespace rlc
