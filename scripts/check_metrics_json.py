#!/usr/bin/env python3
"""Validate the metrics records in a BENCH_*.json artifact.

Usage: check_metrics_json.py BENCH_query_kernel.json

Checks, in order:
  1. the file is a JSON array whose first record is build provenance,
  2. it contains at least one {"record": "metric", "type": "histogram"}
     record carrying count / mean_ns / p50_ns / p95_ns / p99_ns / max_ns
     with sane ordering (p50 <= p95 <= p99 <= max, count > 0),
  3. counter metric records carry a non-negative integer value,
  4. if a {"record": "metrics_overhead"} record is present, it carries
     ns_per_probe_metrics_on / ns_per_probe_metrics_off / overhead_ratio.

Exit status 0 on success; 1 with a one-line reason otherwise. The CI
metrics smoke step runs this against BENCH_query_kernel.json so a refactor
cannot silently stop exporting the registry into the bench artifacts.
"""

import json
import sys


def fail(reason: str) -> None:
    print(f"FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_metrics_json.py <BENCH_*.json>")
    path = sys.argv[1]
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(records, list) or not records:
        fail(f"{path}: expected a non-empty JSON array")
    if records[0].get("record") != "provenance":
        fail(f"{path}: first record is not build provenance")

    histograms = 0
    counters = 0
    for i, rec in enumerate(records):
        if rec.get("record") != "metric":
            continue
        name = rec.get("metric", f"#{i}")
        kind = rec.get("type")
        if kind == "histogram":
            for key in ("count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
                        "max_ns"):
                if key not in rec:
                    fail(f"{path}: histogram {name} missing {key}")
            if rec["count"] <= 0:
                fail(f"{path}: histogram {name} has count {rec['count']}")
            if not (rec["p50_ns"] <= rec["p95_ns"] <= rec["p99_ns"]
                    <= rec["max_ns"]):
                fail(f"{path}: histogram {name} has unordered percentiles")
            histograms += 1
        elif kind == "counter":
            value = rec.get("value")
            if not isinstance(value, int) or value < 0:
                fail(f"{path}: counter {name} has bad value {value!r}")
            counters += 1
        elif kind == "gauge":
            if not isinstance(rec.get("value"), int):
                fail(f"{path}: gauge {name} has bad value")
        else:
            fail(f"{path}: metric {name} has unknown type {kind!r}")
    if histograms == 0:
        fail(f"{path}: no histogram metric records (exporter not wired?)")
    if counters == 0:
        fail(f"{path}: no counter metric records (exporter not wired?)")

    overheads = [r for r in records if r.get("record") == "metrics_overhead"]
    for rec in overheads:
        for key in ("ns_per_probe_metrics_on", "ns_per_probe_metrics_off",
                    "overhead_ratio"):
            if key not in rec:
                fail(f"{path}: metrics_overhead record missing {key}")
        print(f"metrics overhead: {(rec['overhead_ratio'] - 1) * 100:+.2f}% "
              f"({rec['ns_per_probe_metrics_off']:.1f} -> "
              f"{rec['ns_per_probe_metrics_on']:.1f} ns/probe)")

    print(f"OK: {path} carries {histograms} histogram and {counters} counter "
          f"metric records"
          + (f", {len(overheads)} overhead record(s)" if overheads else ""))


if __name__ == "__main__":
    main()
