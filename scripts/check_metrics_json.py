#!/usr/bin/env python3
"""Validate the metrics records in a BENCH_*.json artifact.

Usage: check_metrics_json.py [--serving] [--memory N] [--compose-p95 RATIO]
       BENCH_query_kernel.json

Checks, in order:
  1. the file is a JSON array whose first record is build provenance,
  2. it contains at least one {"record": "metric", "type": "histogram"}
     record carrying count / mean_ns / p50_ns / p95_ns / p99_ns / max_ns
     with sane ordering (p50 <= p95 <= p99 <= max, count > 0),
  3. counter metric records carry a non-negative integer value,
  4. if a {"record": "metrics_overhead"} record is present, it carries
     ns_per_probe_metrics_on / ns_per_probe_metrics_off / overhead_ratio.

With --serving (for BENCH_serving.json), additionally:
  5. a nonzero serve.shed counter record is present (the resilience phase
     actually exercised admission control),
  6. at least one nonzero serve.breaker.* counter record is present,
     including serve.breaker.opened AND serve.breaker.reclosed (a breaker
     observably tripped and recovered),
  7. a {"record": "resilience"} summary exists with "recovered": true,
  8. a nonzero serve.compose.probes counter record is present and no
     serve.fallback* counter exists at all — cross-shard probes are
     composed over the boundary skeleton, not silently routed through a
     resurrected whole-graph fallback tier,
  9. every {"record": "community"} and mode record with telemetry agrees
     ("agree": true),
 10. the skeleton frontier cache is live: some source's
     serve.compose.frontier.{hits,misses} sum to > 0, and for every source
     evictions <= misses (each eviction drops an installed frontier and
     every install counted a miss).

With --compose-p95 RATIO (nightly, for BENCH_serving.json), additionally:
 11. both {"record": "compose_p95"} policies (hash, range_ordered) exist
     with samples, and p95(hash) <= RATIO * p95(range_ordered) — the
     composed-probe tail under the composition-heavy hash partitioning
     stays within RATIO of the locality-friendly policy at equal shard
     count.

With --memory N (for BENCH_serving.json from an N-shard run), additionally:
  12. a {"record": "memory"} summary exists whose
      aggregate_shard_index_bytes / whole_index_bytes <= 1.3 / N — the
      sharded deployment actually divides index memory instead of
      duplicating it.

Exit status 0 on success; 1 with a one-line reason otherwise. The CI
metrics smoke step runs this against BENCH_query_kernel.json (and, with
--serving, BENCH_serving.json) so a refactor cannot silently stop
exporting the registry — or the fault-handling counters — into the bench
artifacts. The nightly memory-acceptance step runs --memory against the
20K-vertex bench artifact.
"""

import json
import sys


def fail(reason: str) -> None:
    print(f"FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def check_serving(path: str, records: list) -> None:
    """Fault-handling telemetry checks for BENCH_serving.json."""
    counters = {}
    for rec in records:
        if rec.get("record") == "metric" and rec.get("type") == "counter":
            counters[rec.get("metric")] = rec.get("value", 0)

    if counters.get("serve.shed", 0) <= 0:
        fail(f"{path}: no nonzero serve.shed counter "
             "(resilience phase did not shed)")
    breaker = {k: v for k, v in counters.items()
               if k.startswith("serve.breaker.") and v > 0}
    if not breaker:
        fail(f"{path}: no nonzero serve.breaker.* counters")
    for required in ("serve.breaker.opened", "serve.breaker.reclosed"):
        if counters.get(required, 0) <= 0:
            fail(f"{path}: {required} is zero — breaker never "
                 "observably tripped and recovered")

    summaries = [r for r in records if r.get("record") == "resilience"]
    if not summaries:
        fail(f"{path}: no resilience summary record")
    for rec in summaries:
        if rec.get("recovered") is not True:
            fail(f"{path}: resilience summary reports recovered="
                 f"{rec.get('recovered')!r}")

    # Composition is the only cross-shard tier: its counters must be live
    # and nothing may reintroduce a fallback metric under any name.
    if counters.get("serve.compose.probes", 0) <= 0:
        fail(f"{path}: serve.compose.probes is zero — cross-shard "
             "composition was bypassed")
    fallback = [k for k in counters if "fallback" in k]
    if fallback:
        fail(f"{path}: fallback counters present ({', '.join(fallback)}) — "
             "the whole-graph fallback tier must stay deleted")
    for rec in records:
        if rec.get("record") in ("community",) or "agree" in rec:
            if rec.get("agree") is not True:
                fail(f"{path}: record {rec.get('record') or rec.get('mode')!r} "
                     "disagrees with the whole-graph oracle")

    # The skeleton frontier cache must be live in at least one exporting
    # service, and its counters must conserve per source: every eviction
    # drops an installed frontier, every install counted a miss.
    by_source: dict = {}
    for rec in records:
        if rec.get("record") == "metric" and rec.get("type") == "counter":
            by_source.setdefault(rec.get("source", "global"), {})[
                rec.get("metric")] = rec.get("value", 0)
    frontier_live = 0
    for source, cs in by_source.items():
        hits = cs.get("serve.compose.frontier.hits", 0)
        misses = cs.get("serve.compose.frontier.misses", 0)
        evictions = cs.get("serve.compose.frontier.evictions", 0)
        frontier_live += hits + misses
        if evictions > misses:
            fail(f"{path}: source {source!r} has frontier evictions "
                 f"{evictions} > misses {misses} — the cache evicted "
                 "entries it never installed")
    if frontier_live <= 0:
        fail(f"{path}: serve.compose.frontier.{{hits,misses}} are zero "
             "everywhere — the skeleton frontier cache was bypassed")

    compose = {k: v for k, v in counters.items()
               if k.startswith("serve.compose.") and v > 0}
    print(f"serving: shed={counters['serve.shed']}, "
          + ", ".join(f"{k.removeprefix('serve.breaker.')}={v}"
                      for k, v in sorted(breaker.items()))
          + "; " + ", ".join(f"{k.removeprefix('serve.')}={v}"
                             for k, v in sorted(compose.items())))


def check_compose_p95(path: str, records: list, ratio: float) -> None:
    """Nightly gate: composed-probe p95 under hash partitioning stays
    within `ratio` of range_ordered at equal shard count."""
    p95 = {}
    for rec in records:
        if rec.get("record") != "compose_p95":
            continue
        if rec.get("samples", 0) <= 0:
            fail(f"{path}: compose_p95 record for {rec.get('policy')!r} "
                 "has no histogram samples")
        p95[rec.get("policy")] = rec.get("p95_ns", 0)
    for policy in ("hash", "range_ordered"):
        if policy not in p95:
            fail(f"{path}: no compose_p95 record for policy {policy!r}")
    if p95["range_ordered"] <= 0:
        fail(f"{path}: compose_p95 for range_ordered is {p95['range_ordered']}")
    actual = p95["hash"] / p95["range_ordered"]
    if actual > ratio:
        fail(f"{path}: composed-probe p95 under hash is {actual:.2f}x "
             f"range_ordered ({p95['hash']} vs {p95['range_ordered']} ns); "
             f"bound is {ratio:.2f}x")
    print(f"compose_p95: hash {p95['hash']} ns vs range_ordered "
          f"{p95['range_ordered']} ns = {actual:.2f}x (bound {ratio:.2f}x)")


def check_memory(path: str, records: list, num_shards: int) -> None:
    """The ~1/N memory-scaling acceptance gate for BENCH_serving.json."""
    memory = [r for r in records if r.get("record") == "memory"]
    if not memory:
        fail(f"{path}: no memory record")
    bound = 1.3 / num_shards
    for rec in memory:
        whole = rec.get("whole_index_bytes", 0)
        shard = rec.get("aggregate_shard_index_bytes", 0)
        if whole <= 0:
            fail(f"{path}: memory record has whole_index_bytes={whole!r}")
        ratio = shard / whole
        if ratio > bound:
            fail(f"{path}: aggregate shard index bytes {shard} is "
                 f"{ratio:.3f}x the whole-graph index {whole}; bound for "
                 f"{num_shards} shards is {bound:.3f}x")
        print(f"memory: {num_shards} shards at {ratio:.3f}x whole-graph "
              f"index ({shard}/{whole} bytes, bound {bound:.3f}x)")


def main() -> None:
    argv = sys.argv[1:]
    serving = "--serving" in argv
    memory_shards = None
    compose_p95_ratio = None
    args = []
    i = 0
    while i < len(argv):
        if argv[i] == "--serving":
            pass
        elif argv[i] == "--memory":
            i += 1
            if i >= len(argv) or not argv[i].isdigit() or int(argv[i]) < 1:
                fail("--memory requires a positive shard count")
            memory_shards = int(argv[i])
        elif argv[i] == "--compose-p95":
            i += 1
            try:
                compose_p95_ratio = float(argv[i]) if i < len(argv) else 0.0
            except ValueError:
                compose_p95_ratio = 0.0
            if compose_p95_ratio <= 0:
                fail("--compose-p95 requires a positive ratio")
        else:
            args.append(argv[i])
        i += 1
    if len(args) != 1:
        fail("usage: check_metrics_json.py [--serving] [--memory N] "
             "[--compose-p95 RATIO] <BENCH_*.json>")
    path = args[0]
    try:
        with open(path) as f:
            records = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(records, list) or not records:
        fail(f"{path}: expected a non-empty JSON array")
    if records[0].get("record") != "provenance":
        fail(f"{path}: first record is not build provenance")

    histograms = 0
    counters = 0
    for i, rec in enumerate(records):
        if rec.get("record") != "metric":
            continue
        name = rec.get("metric", f"#{i}")
        kind = rec.get("type")
        if kind == "histogram":
            for key in ("count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
                        "max_ns"):
                if key not in rec:
                    fail(f"{path}: histogram {name} missing {key}")
            if rec["count"] <= 0:
                fail(f"{path}: histogram {name} has count {rec['count']}")
            if not (rec["p50_ns"] <= rec["p95_ns"] <= rec["p99_ns"]
                    <= rec["max_ns"]):
                fail(f"{path}: histogram {name} has unordered percentiles")
            histograms += 1
        elif kind == "counter":
            value = rec.get("value")
            if not isinstance(value, int) or value < 0:
                fail(f"{path}: counter {name} has bad value {value!r}")
            counters += 1
        elif kind == "gauge":
            if not isinstance(rec.get("value"), int):
                fail(f"{path}: gauge {name} has bad value")
        else:
            fail(f"{path}: metric {name} has unknown type {kind!r}")
    if histograms == 0:
        fail(f"{path}: no histogram metric records (exporter not wired?)")
    if counters == 0:
        fail(f"{path}: no counter metric records (exporter not wired?)")

    overheads = [r for r in records if r.get("record") == "metrics_overhead"]
    for rec in overheads:
        for key in ("ns_per_probe_metrics_on", "ns_per_probe_metrics_off",
                    "overhead_ratio"):
            if key not in rec:
                fail(f"{path}: metrics_overhead record missing {key}")
        print(f"metrics overhead: {(rec['overhead_ratio'] - 1) * 100:+.2f}% "
              f"({rec['ns_per_probe_metrics_off']:.1f} -> "
              f"{rec['ns_per_probe_metrics_on']:.1f} ns/probe)")

    if serving:
        check_serving(path, records)
    if compose_p95_ratio is not None:
        check_compose_p95(path, records, compose_p95_ratio)
    if memory_shards is not None:
        check_memory(path, records, memory_shards)

    print(f"OK: {path} carries {histograms} histogram and {counters} counter "
          f"metric records"
          + (f", {len(overheads)} overhead record(s)" if overheads else ""))


if __name__ == "__main__":
    main()
